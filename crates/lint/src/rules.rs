//! The rule engine: repo-specific invariants, stable IDs, and waivers.
//!
//! Rules operate on the blanked code stream produced by
//! [`crate::lexer::lex`]; test-scoped lines are exempt. Every violation
//! is waivable only by an inline comment of the form
//!
//! ```text
//! // fam-lint: allow(D001) -- why this site is safe
//! ```
//!
//! on the offending line or on a standalone comment line directly above
//! it. A waiver **must** carry a reason after `--` (otherwise `W001`),
//! and a waiver that suppresses nothing is itself an error (`W002`), so
//! the set of waived sites can never silently rot. See `docs/LINTS.md`
//! for the full catalog.

use crate::lexer::{lex, Line};

/// Stable rule identifiers. New rules append; IDs are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Float ordering: `partial_cmp` / `f64::max` fold operators.
    D001,
    /// Unordered `HashMap`/`HashSet` in the numeric crates.
    D002,
    /// Ambient nondeterminism: wall clocks and unseeded RNG.
    D003,
    /// Panic-freedom on `fam-serve` request paths.
    P001,
    /// Kernel-shape confinement: raw float accumulation outside kernels.
    K001,
    /// `#![forbid(unsafe_code)]` present in every crate root.
    U001,
    /// Ad-hoc threading outside the deterministic pool and the serve
    /// acceptor.
    T001,
    /// Waiver without a reason.
    W001,
    /// Stale waiver: suppresses nothing.
    W002,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::P001 => "P001",
            Rule::K001 => "K001",
            Rule::U001 => "U001",
            Rule::T001 => "T001",
            Rule::W001 => "W001",
            Rule::W002 => "W002",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "D001" => Some(Rule::D001),
            "D002" => Some(Rule::D002),
            "D003" => Some(Rule::D003),
            "P001" => Some(Rule::P001),
            "K001" => Some(Rule::K001),
            "U001" => Some(Rule::U001),
            "T001" => Some(Rule::T001),
            "W001" => Some(Rule::W001),
            "W002" => Some(Rule::W002),
            _ => None,
        }
    }
}

/// One rule violation (or waiver defect) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated (e.g. `crates/core/src/scores.rs`).
    pub rel_path: String,
    /// The owning workspace member (e.g. `crates/core`; `.` for the root
    /// facade package).
    pub member: String,
    /// `fam_core::kernels` — the one file where the floating-point shape
    /// of hot passes lives; D001/K001 do not apply inside it.
    pub is_kernels: bool,
    /// Crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`) — U001
    /// checks `#![forbid(unsafe_code)]` here.
    pub is_crate_root: bool,
}

impl FileCtx {
    /// Derive the context from a workspace-relative path.
    pub fn from_rel_path(rel: &str) -> FileCtx {
        let rel_path = rel.replace('\\', "/");
        let member = if let Some(rest) = rel_path.strip_prefix("crates/") {
            let mut parts = rest.split('/');
            let first = parts.next().unwrap_or("");
            if first == "compat" {
                let second = parts.next().unwrap_or("");
                format!("crates/compat/{second}")
            } else {
                format!("crates/{first}")
            }
        } else {
            ".".to_string()
        };
        let file_name = rel_path.rsplit('/').next().unwrap_or("");
        let in_bin = rel_path.contains("/src/bin/");
        let is_crate_root = file_name == "lib.rs"
            || file_name == "main.rs"
            || (in_bin && file_name.ends_with(".rs"));
        FileCtx {
            is_kernels: member == "crates/core" && file_name == "kernels.rs",
            is_crate_root,
            rel_path,
            member,
        }
    }

    /// The numeric crates whose folds feed reproducible answers.
    fn is_numeric_crate(&self) -> bool {
        self.member == "crates/core" || self.member == "crates/algos"
    }

    fn d001_applies(&self) -> bool {
        !self.is_kernels
    }

    fn d002_applies(&self) -> bool {
        self.is_numeric_crate()
    }

    /// Wall clocks and entropy are the *point* of the serving, bench, and
    /// criterion-shim crates; everywhere else they need a waiver.
    fn d003_applies(&self) -> bool {
        !matches!(self.member.as_str(), "crates/serve" | "crates/bench" | "crates/compat/criterion")
    }

    fn p001_applies(&self) -> bool {
        self.member == "crates/serve"
    }

    fn k001_applies(&self) -> bool {
        self.is_numeric_crate() && !self.is_kernels
    }

    /// The deterministic pool (`fam_core::par` and its submodules) and
    /// fam-serve's acceptor/worker loop are the only sanctioned spawn
    /// sites; everywhere else an ad-hoc thread bypasses the pool's
    /// determinism contract and needs a waiver.
    fn t001_applies(&self) -> bool {
        !(self.rel_path == "crates/core/src/par.rs"
            || self.rel_path.starts_with("crates/core/src/par/")
            || self.rel_path == "crates/serve/src/server.rs")
    }
}

/// A parsed waiver comment.
#[derive(Debug)]
struct Waiver {
    /// Line the comment sits on (1-based).
    line: usize,
    /// Line whose findings it suppresses (same line, or the next code
    /// line for a standalone comment).
    target: Option<usize>,
    rules: Vec<Rule>,
    has_reason: bool,
    used: bool,
}

/// Lint one file's source text under `ctx`. Returns findings sorted by line.
pub fn lint_source(ctx: &FileCtx, source: &str) -> Vec<Finding> {
    let lines = lex(source);
    let mut findings = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        let code = line.code.as_str();
        let mut push = |rule: Rule, message: String| {
            findings.push(Finding {
                rule,
                path: ctx.rel_path.clone(),
                line: lineno,
                message,
                snippet: source.lines().nth(idx).unwrap_or("").trim().to_string(),
            });
        };

        if ctx.d001_applies() {
            for tok in ["partial_cmp", "f64::max", "f64::min", "f32::max", "f32::min"] {
                if has_word(code, tok) {
                    push(
                        Rule::D001,
                        format!(
                            "float ordering via `{tok}` — use `total_cmp` (or \
                             `fam_core::kernels::lane_max`) so NaN cannot poison an ordering \
                             decision"
                        ),
                    );
                }
            }
        }
        if ctx.d002_applies() {
            for tok in ["HashMap", "HashSet"] {
                if has_word(code, tok) {
                    push(
                        Rule::D002,
                        format!(
                            "`{tok}` in a numeric crate — iteration order is nondeterministic; \
                             use `BTreeMap`/`BTreeSet`/an indexed `Vec`, or waive with a proof \
                             that its order never feeds a fold"
                        ),
                    );
                }
            }
        }
        if ctx.d003_applies() {
            for tok in [
                "Instant::now",
                "SystemTime::now",
                "thread_rng",
                "from_entropy",
                "OsRng",
                "rand::random",
            ] {
                if has_word(code, tok) {
                    push(
                        Rule::D003,
                        format!(
                            "ambient nondeterminism via `{tok}` — outside the serve/bench \
                             allowlist, time and entropy must come from seeded/injected sources"
                        ),
                    );
                }
            }
        }
        if ctx.p001_applies() {
            for tok in
                [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"]
            {
                if code.contains(tok) {
                    push(
                        Rule::P001,
                        format!(
                            "`{tok}` on a fam-serve request path — handlers must return errors, \
                             not panic a worker"
                        ),
                    );
                }
            }
            if let Some(col) = find_bare_index(code) {
                push(
                    Rule::P001,
                    format!(
                        "bare index `…[` at column {} — out-of-bounds panics a worker; use \
                         `.get()` / pattern matching, or waive with a bounds proof",
                        col + 1
                    ),
                );
            }
        }
        if ctx.k001_applies() {
            for tok in ["mul_add", ".sum::<f64>()", ".sum::<f32>()"] {
                if if tok.starts_with('.') { code.contains(tok) } else { has_word(code, tok) } {
                    push(
                        Rule::K001,
                        format!(
                            "`{tok}` outside `fam_core::kernels` — the floating-point shape of \
                             accumulations is single-sourced there (`lane_sum`/`fmadd`)"
                        ),
                    );
                }
            }
            if fold_with_float_seed(code) {
                push(
                    Rule::K001,
                    "float-seeded `.fold(` outside `fam_core::kernels` — route the reduction \
                     through `lane_sum`/`lane_max` or waive with a reason"
                        .to_string(),
                );
            }
        }
        if ctx.t001_applies() {
            for tok in ["thread::spawn", "thread::scope", "thread::Builder"] {
                if has_word(code, tok) {
                    push(
                        Rule::T001,
                        format!(
                            "`{tok}` outside the sanctioned spawn sites — ad-hoc threads bypass \
                             the deterministic worker pool; route work through `fam_core::par`, \
                             or waive with a reason why this thread cannot affect reproducibility"
                        ),
                    );
                }
            }
        }
    }

    let forbids_unsafe = lines.iter().any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if ctx.is_crate_root && !forbids_unsafe {
        findings.push(Finding {
            rule: Rule::U001,
            path: ctx.rel_path.clone(),
            line: 1,
            message: "crate root missing `#![forbid(unsafe_code)]`".to_string(),
            snippet: source.lines().next().unwrap_or("").trim().to_string(),
        });
    }

    apply_waivers(ctx, &lines, &mut findings);
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Parse waivers from comments, suppress matched findings, and emit
/// W001/W002 for malformed or stale waivers.
fn apply_waivers(ctx: &FileCtx, lines: &[Line], findings: &mut Vec<Finding>) {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut bad: Vec<Finding> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(pos) = line.comment.find("fam-lint:") else { continue };
        let lineno = idx + 1;
        let rest = line.comment[pos + "fam-lint:".len()..].trim_start();
        let parsed = parse_allow(rest);
        let Some((rules, has_reason)) = parsed else {
            bad.push(Finding {
                rule: Rule::W001,
                path: ctx.rel_path.clone(),
                line: lineno,
                message:
                    "malformed fam-lint comment — expected `allow(<RULE>[, <RULE>…]) -- <reason>`"
                        .to_string(),
                snippet: line.comment.trim().to_string(),
            });
            continue;
        };
        if !has_reason {
            bad.push(Finding {
                rule: Rule::W001,
                path: ctx.rel_path.clone(),
                line: lineno,
                message: "waiver without a reason — append `-- <why this site is safe>`"
                    .to_string(),
                snippet: line.comment.trim().to_string(),
            });
            continue;
        }
        // Standalone comment line: the waiver aims at the next code line.
        let target = if line.code.trim().is_empty() {
            lines
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(j, _)| j + 1)
        } else {
            Some(lineno)
        };
        waivers.push(Waiver { line: lineno, target, rules, has_reason, used: false });
    }

    findings.retain(|f| {
        let mut keep = true;
        for w in waivers.iter_mut() {
            let hits = w.rules.contains(&f.rule)
                && (w.target == Some(f.line)
                    || (f.rule == Rule::U001 && w.rules.contains(&Rule::U001)));
            if hits {
                w.used = true;
                keep = false;
            }
        }
        keep
    });

    for w in &waivers {
        if w.has_reason && !w.used {
            let ids: Vec<&str> = w.rules.iter().map(|r| r.id()).collect();
            bad.push(Finding {
                rule: Rule::W002,
                path: ctx.rel_path.clone(),
                line: w.line,
                message: format!(
                    "stale waiver: no {} finding on the waived line — delete it so the waiver \
                     set cannot rot",
                    ids.join("/")
                ),
                snippet: String::new(),
            });
        }
    }
    findings.extend(bad);
}

/// Parse `allow(D001, K001) -- reason`. Returns the rule list and whether
/// a non-empty reason follows `--`; `None` if the shape or a rule ID is
/// unrecognized.
fn parse_allow(rest: &str) -> Option<(Vec<Rule>, bool)> {
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let mut rules = Vec::new();
    for id in rest[..close].split(',') {
        rules.push(Rule::from_id(id.trim())?);
    }
    if rules.is_empty() {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let has_reason = tail.strip_prefix("--").map(|r| !r.trim().is_empty()).unwrap_or(false);
    Some((rules, has_reason))
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Substring match with identifier boundaries on both ends (`:` and `.`
/// inside the needle are fine, so `f64::max` matches as one token).
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1] as char);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end] as char);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// A `[` directly preceded by an identifier character, `)`, or `]` is an
/// index expression (`buf[0]`, `row[..n]`, `f()[i]`). Attributes (`#[`),
/// macros (`vec![`), slice patterns, and array types are all preceded by
/// other characters and do not match.
fn find_bare_index(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'[' && i > 0 {
            let p = bytes[i - 1] as char;
            if is_ident(p) || p == ')' || p == ']' {
                return Some(i);
            }
        }
    }
    None
}

/// `.fold(` whose seed is a float literal or an `f64::`/`f32::` constant —
/// the textual signature of a raw float accumulation.
fn fold_with_float_seed(code: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(".fold(") {
        let after = code[from + pos + ".fold(".len()..].trim_start();
        let after = after.strip_prefix('-').unwrap_or(after);
        let float_literal = after
            .find(|c: char| !c.is_ascii_digit() && c != '_')
            .map(|stop| {
                stop > 0
                    && (after[stop..].starts_with('.')
                        || after[stop..].starts_with("f64")
                        || after[stop..].starts_with("f32"))
            })
            .unwrap_or(false);
        if float_literal || after.starts_with("f64::") || after.starts_with("f32::") {
            return true;
        }
        from += pos + ".fold(".len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str) -> FileCtx {
        FileCtx::from_rel_path(path)
    }

    fn ids(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule.id()).collect()
    }

    #[test]
    fn member_derivation() {
        assert_eq!(ctx("crates/core/src/kernels.rs").member, "crates/core");
        assert!(ctx("crates/core/src/kernels.rs").is_kernels);
        assert_eq!(ctx("crates/compat/rand/src/lib.rs").member, "crates/compat/rand");
        assert_eq!(ctx("src/engine.rs").member, ".");
        assert!(ctx("crates/bench/src/bin/experiments.rs").is_crate_root);
        assert!(!ctx("crates/core/src/scores.rs").is_crate_root);
    }

    #[test]
    fn d001_fires_and_waives() {
        let c = ctx("crates/algos/src/x.rs");
        let f = lint_source(&c, "fn a(x: f64, y: f64) { x.partial_cmp(&y); }\n");
        assert_eq!(ids(&f), ["D001"]);
        let f = lint_source(
            &c,
            "// fam-lint: allow(D001) -- delegates to the total_cmp Ord impl\nfn a(x: f64, y: f64) { x.partial_cmp(&y); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d001_exempt_in_kernels_and_tests() {
        let f = lint_source(&ctx("crates/core/src/kernels.rs"), "let m = f64::max(a, b);\n");
        assert!(f.is_empty());
        let f = lint_source(
            &ctx("crates/core/src/x.rs"),
            "#[cfg(test)]\nmod tests {\n    fn t() { let m = f64::max(a, b); }\n}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn waiver_without_reason_is_w001_and_does_not_suppress() {
        let c = ctx("crates/algos/src/x.rs");
        let f = lint_source(&c, "x.partial_cmp(&y); // fam-lint: allow(D001)\n");
        let mut got = ids(&f);
        got.sort_unstable();
        assert_eq!(got, ["D001", "W001"]);
    }

    #[test]
    fn stale_waiver_is_w002() {
        let c = ctx("crates/algos/src/x.rs");
        let f = lint_source(&c, "// fam-lint: allow(D001) -- nothing here\nlet a = 1;\n");
        assert_eq!(ids(&f), ["W002"]);
    }

    #[test]
    fn unknown_rule_in_waiver_is_w001() {
        let c = ctx("crates/algos/src/x.rs");
        let f = lint_source(&c, "// fam-lint: allow(Z999) -- ???\nlet a = 1;\n");
        assert_eq!(ids(&f), ["W001"]);
    }

    #[test]
    fn multi_rule_waiver_covers_both_findings_on_a_line() {
        let c = ctx("crates/core/src/x.rs");
        let src = "// fam-lint: allow(D001, K001) -- exact max fold, pinned by tests\nlet m = xs.iter().fold(f64::NEG_INFINITY, f64::max);\n";
        assert!(lint_source(&c, src).is_empty());
    }

    #[test]
    fn d003_allowlist() {
        let src = "let t = Instant::now();\n";
        assert_eq!(ids(&lint_source(&ctx("crates/core/src/x.rs"), src)), ["D003"]);
        assert!(lint_source(&ctx("crates/serve/src/server.rs"), src).is_empty());
        assert!(lint_source(&ctx("crates/bench/src/workloads.rs"), src).is_empty());
        assert!(lint_source(&ctx("crates/compat/criterion/src/timing.rs"), src).is_empty());
    }

    #[test]
    fn p001_bare_index_heuristic() {
        let c = ctx("crates/serve/src/http.rs");
        assert_eq!(ids(&lint_source(&c, "let x = parts[1];\n")), ["P001"]);
        assert_eq!(ids(&lint_source(&c, "let x = &buf[..n];\n")), ["P001"]);
        assert!(lint_source(&c, "#[derive(Clone)]\nstruct S;\n").is_empty());
        assert!(lint_source(&c, "let v = vec![1, 2];\n").is_empty());
        assert!(lint_source(&c, "fn f(x: [u8; 4]) {}\n").is_empty());
        assert!(lint_source(&c, "let [a, b] = pair;\n").is_empty());
    }

    #[test]
    fn k001_scope_and_patterns() {
        let core = ctx("crates/core/src/x.rs");
        assert_eq!(ids(&lint_source(&core, "let s = xs.iter().sum::<f64>();\n")), ["K001"]);
        assert_eq!(ids(&lint_source(&core, "let s = xs.fold(0.0f64, |a, b| a + b);\n")), ["K001"]);
        assert_eq!(ids(&lint_source(&core, "let y = a.mul_add(b, c);\n")), ["K001"]);
        assert!(lint_source(&core, "let s = xs.fold(0usize, |a, b| a + b);\n").is_empty());
        // Outside the numeric crates the kernel-shape rule does not apply.
        assert!(lint_source(&ctx("crates/data/src/x.rs"), "xs.iter().sum::<f64>();\n").is_empty());
    }

    #[test]
    fn u001_crate_root() {
        let c = ctx("crates/data/src/lib.rs");
        assert_eq!(ids(&lint_source(&c, "pub mod csv;\n")), ["U001"]);
        assert!(lint_source(&c, "#![forbid(unsafe_code)]\npub mod csv;\n").is_empty());
        // Non-root files are not checked.
        assert!(lint_source(&ctx("crates/data/src/csv.rs"), "pub fn parse() {}\n").is_empty());
    }

    #[test]
    fn t001_scope_and_waiver() {
        let src = "let h = std::thread::spawn(|| work());\n";
        assert_eq!(ids(&lint_source(&ctx("crates/cli/src/commands.rs"), src)), ["T001"]);
        assert_eq!(
            ids(&lint_source(&ctx("crates/algos/src/x.rs"), "std::thread::scope(|s| {});\n")),
            ["T001"]
        );
        assert_eq!(
            ids(&lint_source(&ctx("crates/core/src/x.rs"), "std::thread::Builder::new();\n")),
            ["T001"]
        );
        // Sanctioned spawn sites: the pool module tree and the serve acceptor.
        assert!(lint_source(&ctx("crates/core/src/par.rs"), src).is_empty());
        assert!(lint_source(&ctx("crates/core/src/par/pool.rs"), src).is_empty());
        assert!(lint_source(&ctx("crates/serve/src/server.rs"), src).is_empty());
        // Waivable like any other rule.
        let waived = "// fam-lint: allow(T001) -- joined before any solve starts\nlet h = std::thread::spawn(|| work());\n";
        assert!(lint_source(&ctx("crates/cli/src/commands.rs"), waived).is_empty());
    }

    #[test]
    fn standalone_waiver_targets_next_code_line() {
        let c = ctx("crates/serve/src/http.rs");
        let src = "// fam-lint: allow(P001) -- length checked two lines up\n\nlet x = parts[1];\n";
        assert!(lint_source(&c, src).is_empty(), "blank line between waiver and code is fine");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let c = ctx("crates/core/src/x.rs");
        let src = "// partial_cmp is bad\nlet s = \"f64::max\";\n";
        assert!(lint_source(&c, src).is_empty());
    }
}
