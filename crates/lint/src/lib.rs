#![forbid(unsafe_code)]
//! `fam-lint` — a dependency-free invariant linter for this workspace.
//!
//! Generic clippy cannot express the contracts this repo actually relies
//! on: bit-identical serial/parallel/mirrored runs (`total_cmp`
//! everywhere, ordered reductions), panic-freedom on `fam-serve` request
//! paths, and the rule that the floating-point shape of every hot pass is
//! single-sourced in `fam_core::kernels`. This crate turns those from
//! review-time prose into a mechanical gate:
//!
//! ```bash
//! cargo run -p fam-lint -- --workspace          # human output, exit 1 on findings
//! cargo run -p fam-lint -- --workspace --json   # machine-readable
//! ```
//!
//! The rule catalog (D001/D002/D003/P001/K001/U001 + waiver rules
//! W001/W002) and the waiver syntax live in `docs/LINTS.md`. There are no
//! dependencies by design: the container is offline (no `syn`/`dylint`),
//! and the linter must stay buildable before anything else in the tree.

pub mod lexer;
pub mod rules;

pub use rules::{lint_source, FileCtx, Finding, Rule};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Result of linting a whole workspace.
#[derive(Debug)]
pub struct Report {
    /// Unwaived findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Discover the source files the invariants cover: `src/` of every
/// workspace member plus the root facade's `src/`. Test and bench
/// *directories* (`tests/`, `benches/`, `examples/`) are exempt by
/// construction, matching the in-file `#[cfg(test)]` exemption.
pub fn discover_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut members = parse_members(&manifest);
    members.push(".".to_string());
    let mut files = Vec::new();
    for member in &members {
        let src = root.join(member).join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Pull the `members = [ … ]` list out of the workspace manifest without
/// a TOML dependency. The list is line-oriented in this repo (rustfmt'd
/// by hand); quoted entries are extracted wherever they sit.
fn parse_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with("members") && t.contains('[') {
            in_members = true;
        }
        if in_members {
            let mut rest = t;
            while let Some(start) = rest.find('"') {
                let Some(len) = rest[start + 1..].find('"') else { break };
                members.push(rest[start + 1..start + 1 + len].to_string());
                rest = &rest[start + 1 + len + 1..];
            }
            if t.ends_with(']') {
                break;
            }
        }
    }
    members
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one on-disk file, deriving its rule context from the path
/// relative to `root`.
pub fn lint_file(root: &Path, path: &Path) -> io::Result<Vec<Finding>> {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel = rel.to_string_lossy().replace('\\', "/");
    let source = fs::read_to_string(path)?;
    Ok(lint_source(&FileCtx::from_rel_path(&rel), &source))
}

/// Lint every covered file under the workspace at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = discover_files(root)?;
    let mut findings = Vec::new();
    for file in &files {
        findings.extend(lint_file(root, file)?);
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(Report { findings, files_scanned: files.len() })
}

/// Render a report as JSON (hand-rolled — the crate is dependency-free).
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\"files_scanned\":");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":\"");
        out.push_str(f.rule.id());
        out.push_str("\",\"path\":");
        json_string(&f.path, &mut out);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"message\":");
        json_string(&f.message, &mut out);
        out.push_str(",\"snippet\":");
        json_string(&f.snippet, &mut out);
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_parsing_from_this_workspace_shape() {
        let manifest =
            "[workspace]\nmembers = [\n    \"crates/algos\",\n    \"crates/compat/rand\",\n]\n";
        assert_eq!(parse_members(manifest), ["crates/algos", "crates/compat/rand"]);
    }

    #[test]
    fn json_escapes() {
        let report = Report {
            findings: vec![Finding {
                rule: Rule::D001,
                path: "a\\b.rs".into(),
                line: 3,
                message: "say \"hi\"".into(),
                snippet: "x\ty".into(),
            }],
            files_scanned: 1,
        };
        let json = to_json(&report);
        assert!(json.contains("\"a\\\\b.rs\""));
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.contains("x\\ty"));
        assert!(json.contains("\"files_scanned\":1"));
    }
}
