//! A hand-rolled Rust surface lexer.
//!
//! The linter must run in an offline container, so there is no `syn` or
//! rustc internals to lean on. This module does the minimum lexical work
//! the rules need to be trustworthy on real code:
//!
//! * comments (line, nested block), string literals (plain, raw, byte),
//!   and char literals are **blanked out** of the code stream — a
//!   `partial_cmp` inside a doc comment or an error message must never
//!   fire a rule;
//! * comment text is collected per line so waiver comments can be parsed;
//! * `#[cfg(test)]` / `#[test]` attributes and `mod tests` items open a
//!   brace-tracked *test scope*, and every line inside one is exempt from
//!   the rules (test code may panic and may be as nondeterministic as it
//!   likes).
//!
//! Columns are preserved: blanked regions are replaced by spaces, so a
//! finding's snippet and byte offsets still line up with the source.

/// One source line after lexing.
#[derive(Debug, Clone)]
pub struct Line {
    /// Source text with comments, string contents, and char literals
    /// replaced by spaces. Rules scan only this.
    pub code: String,
    /// Concatenated *implementation* comment text appearing on this line
    /// (without the `//` / `/*` delimiters). Waivers are parsed from
    /// this. Doc comments (`///`, `//!`, `/**`, `/*!`) are excluded so
    /// documentation may show waiver syntax without registering one.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` / `#[test]` /
    /// `mod tests` brace scope (or opens/closes one).
    pub in_test: bool,
}

#[derive(PartialEq)]
enum Mode {
    Code,
    /// The bool is true for doc comments, whose text is not collected.
    LineComment(bool),
    BlockComment(u32, bool),
    Str,
    RawStr(u32),
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex `source` into blanked per-line code + comment streams.
pub fn lex(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let mut i = 0;
    let n = chars.len();

    macro_rules! flush_line {
        () => {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
        };
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment(_)) {
                mode = Mode::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    let doc = matches!(chars.get(i + 2), Some(&'/') | Some(&'!'));
                    mode = Mode::LineComment(doc);
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    let doc = matches!(chars.get(i + 2), Some(&'*') | Some(&'!'))
                        && chars.get(i + 3) != Some(&'/');
                    mode = Mode::BlockComment(1, doc);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    mode = Mode::Str;
                    code.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !matches!(chars.get(i.wrapping_sub(1)), Some(&p) if is_ident(p))
                {
                    // Possible raw/byte string prefix: r", r#", br", b", b'.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (c != 'b' || j > i + 1 || hashes == 0) {
                        // r"..", r#".."#, br".., b"..
                        let is_raw = c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r'));
                        if is_raw || hashes == 0 {
                            for _ in i..=j {
                                code.push(' ');
                            }
                            i = j + 1;
                            mode = if is_raw { Mode::RawStr(hashes) } else { Mode::Str };
                            continue;
                        }
                    }
                    if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        // Byte char literal b'x' / b'\n'.
                        code.push_str("  ");
                        i += 2;
                        i = skip_char_literal(&chars, i, &mut code);
                        continue;
                    }
                    code.push(c);
                    i += 1;
                } else if c == '\'' {
                    // Char literal or lifetime. A lifetime is `'ident` not
                    // followed by a closing quote; everything else here is
                    // a char literal.
                    let n1 = chars.get(i + 1).copied();
                    let n2 = chars.get(i + 2).copied();
                    let lifetime = matches!(n1, Some(a) if is_ident(a) || a == '_')
                        && n2 != Some('\'')
                        && n1 != Some('\\');
                    if lifetime {
                        code.push(c);
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                        i = skip_char_literal(&chars, i, &mut code);
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment(doc) => {
                if !doc {
                    comment.push(c);
                }
                code.push(' ');
                i += 1;
            }
            Mode::BlockComment(depth, doc) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1, doc);
                    }
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1, doc);
                    code.push_str("  ");
                    i += 2;
                } else {
                    if !doc {
                        comment.push(c);
                    }
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Consume the escaped char too — unless it is a line
                    // continuation, whose newline must still flush the line.
                    if chars.get(i + 1) == Some(&'\n') {
                        code.push(' ');
                        i += 1;
                    } else {
                        code.push_str("  ");
                        i += 2;
                    }
                } else if c == '"' {
                    mode = Mode::Code;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if chars.get(i + 1 + h as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        flush_line!();
    }

    mark_test_scopes(&mut lines);
    lines
}

/// Consume the body of a char literal starting just after the opening
/// quote, blanking it into `code`. Returns the index after the closing
/// quote.
fn skip_char_literal(chars: &[char], mut i: usize, code: &mut String) -> usize {
    if chars.get(i) == Some(&'\\') {
        code.push(' ');
        i += 1;
        // The escaped character itself (so `'\''` does not end early) …
        if chars.get(i).is_some() {
            code.push(' ');
            i += 1;
        }
        // … then anything up to the closing quote (covers `'\u{..}'`).
        while let Some(&c) = chars.get(i) {
            code.push(' ');
            i += 1;
            if c == '\'' {
                return i;
            }
        }
        return i;
    }
    if chars.get(i).is_some() {
        code.push(' ');
        i += 1;
    }
    if chars.get(i) == Some(&'\'') {
        code.push(' ');
        i += 1;
    }
    i
}

/// Second pass: mark lines inside `#[cfg(test)]` / `#[test]` / `mod tests`
/// brace scopes. An attribute arms a *pending* flag that attaches to the
/// next `{` (the item body); a `;` first (e.g. `#[cfg(test)] mod tests;` or
/// an attributed `use`) disarms it.
fn mark_test_scopes(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut stack: Vec<i64> = Vec::new();
    let mut pending = false;
    for line in lines.iter_mut() {
        let start_in_test = !stack.is_empty();
        let code = line.code.as_str();
        if code.contains("#[cfg(test)]")
            || code.contains("#[test]")
            || code.contains("#[cfg(all(test")
            || code.contains("#[cfg(any(test")
            || contains_mod_tests(code)
        {
            pending = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending {
                        stack.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if stack.last() == Some(&depth) {
                        stack.pop();
                    }
                }
                // Attribute attached to a braceless item.
                ';' if pending && stack.last() != Some(&(depth - 1)) => {
                    pending = false;
                }
                _ => {}
            }
        }
        line.in_test = start_in_test || !stack.is_empty();
    }
}

/// Word-boundary match for the conventional `mod tests` item.
fn contains_mod_tests(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("mod tests") {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1] as char);
        let end = at + "mod tests".len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end] as char);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_comments_and_collects_text() {
        let lines = lex("let x = 1; // partial_cmp here\nlet y = 2;\n");
        assert!(!lines[0].code.contains("partial_cmp"));
        assert!(lines[0].comment.contains("partial_cmp"));
        assert!(lines[0].code.contains("let x = 1;"));
        assert_eq!(lines[1].comment, "");
    }

    #[test]
    fn blanks_block_comments_nested() {
        let lines = lex("a /* x /* y */ partial_cmp */ b\n");
        assert!(!lines[0].code.contains("partial_cmp"));
        assert!(lines[0].comment.contains("partial_cmp"));
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
    }

    #[test]
    fn blanks_strings_and_raw_strings() {
        let lines = lex("let s = \"partial_cmp\"; let r = r#\"f64::max\"#; done();\n");
        assert!(!lines[0].code.contains("partial_cmp"));
        assert!(!lines[0].code.contains("f64::max"));
        assert!(lines[0].code.contains("done();"));
    }

    #[test]
    fn string_escapes_do_not_terminate() {
        let lines = lex("let s = \"a\\\"partial_cmp\"; end()\n");
        assert!(!lines[0].code.contains("partial_cmp"));
        assert!(lines[0].code.contains("end()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = lex("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\n'; g(); }\n");
        let code = &lines[0].code;
        assert!(code.contains("fn f<'a>(x: &'a str)"), "lifetimes survive: {code}");
        assert!(code.contains("g();"), "code after char literals survives: {code}");
        assert!(!code.contains('"'), "quote char literal blanked: {code}");
    }

    #[test]
    fn doc_comment_text_is_not_collected() {
        let lines = lex("//! module doc waiver-text\n/// item doc\n// real comment\nfn f() {}\n");
        assert_eq!(lines[0].comment, "");
        assert_eq!(lines[1].comment, "");
        assert!(lines[2].comment.contains("real comment"));
    }

    #[test]
    fn escaped_quote_char_literal_does_not_derail() {
        let lines = lex("let q = '\\''; after();\n");
        assert!(lines[0].code.contains("after();"), "got: {}", lines[0].code);
    }

    #[test]
    fn multiline_string_blanks_every_line() {
        let lines = lex("let s = \"first\npartial_cmp\nlast\"; tail();\n");
        assert!(!lines[1].code.contains("partial_cmp"));
        assert!(lines[2].code.contains("tail();"));
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        let lines = lex("let s = \"one \\\n     two\";\nlet y = 3;\n");
        assert_eq!(lines.len(), 3);
        assert!(lines[2].code.contains("let y = 3;"));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test, "closing brace line still counts as test");
        assert!(!lines[5].in_test);
    }

    #[test]
    fn test_attr_fn_is_marked() {
        let src = "#[test]\nfn check() {\n    boom();\n}\nfn live() {}\n";
        let lines = lex(src);
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { body(); }\n";
        let lines = lex(src);
        assert!(!lines[2].in_test, "the `;` must disarm the pending attribute");
    }

    #[test]
    fn mod_tests_without_attribute_is_marked() {
        let src = "mod tests {\n    fn t() {}\n}\n";
        let lines = lex(src);
        assert!(lines[1].in_test);
    }

    #[test]
    fn nested_test_scopes_close_at_the_right_brace() {
        let src = "mod outer {\n    #[cfg(test)]\n    mod tests {\n        fn t() {}\n    }\n    fn live() {}\n}\n";
        let lines = lex(src);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test, "sibling of the test mod is live code");
    }
}
