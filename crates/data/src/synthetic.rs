//! Synthetic dataset generation following Börzsönyi et al. (the skyline
//! operator paper \[4\]), which the FAM paper uses for all scalability
//! experiments: independent, correlated, and anti-correlated attribute
//! distributions over `[0,1]^d`.

use fam_core::randext::{normal, uniform_simplex_into};
use fam_core::{Dataset, FamError, Result};
use rand::{Rng, RngCore};

/// Attribute correlation structure of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correlation {
    /// Attributes i.i.d. uniform on `[0,1]` — small skylines.
    Independent,
    /// Attributes positively correlated (good points are good everywhere) —
    /// tiny skylines.
    Correlated,
    /// Attributes anti-correlated (points trade one dimension against the
    /// others) — large skylines, the hard case for k-regret queries.
    AntiCorrelated,
}

/// Generates `n` points in `d` dimensions with the given correlation
/// structure; all coordinates lie in `[0,1]`.
///
/// # Errors
///
/// Returns an error when `n == 0` or `d == 0`.
pub fn synthetic(
    n: usize,
    d: usize,
    correlation: Correlation,
    rng: &mut dyn RngCore,
) -> Result<Dataset> {
    if n == 0 {
        return Err(FamError::EmptyDataset);
    }
    if d == 0 {
        return Err(FamError::ZeroDimension);
    }
    let mut data = Vec::with_capacity(n * d);
    let mut simplex = vec![0.0; d];
    for _ in 0..n {
        match correlation {
            Correlation::Independent => {
                for _ in 0..d {
                    data.push(rng.gen_range(0.0..1.0));
                }
            }
            Correlation::Correlated => {
                // A common "quality" level plus small per-dimension jitter.
                let base: f64 = rng.gen_range(0.0..1.0);
                for _ in 0..d {
                    data.push((base + normal(rng, 0.0, 0.05)).clamp(0.0, 1.0));
                }
            }
            Correlation::AntiCorrelated => {
                // Points near the hyperplane sum(x) = d/2: a simplex
                // direction scaled to the plane with jitter. Points that
                // leave the unit box are rescaled (not clamped — clamping
                // would pile mass onto the box faces and create artificial
                // dominators that collapse the skyline).
                // The shell must be thin relative to the directional spread,
                // otherwise inner points are dominated and the skyline
                // collapses to O(log n) as for a region-filling cloud.
                uniform_simplex_into(rng, &mut simplex);
                let level = normal(rng, 0.5, 0.02).clamp(0.35, 0.65);
                let start = data.len();
                let mut max_v = 0.0f64;
                for &s in &simplex {
                    let v = (s * d as f64 * level + normal(rng, 0.0, 0.01)).max(0.0);
                    max_v = max_v.max(v);
                    data.push(v);
                }
                if max_v > 1.0 {
                    for v in &mut data[start..] {
                        *v /= max_v;
                    }
                }
            }
        }
    }
    Dataset::from_flat(data, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fam_geometry::skyline;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDA7A)
    }

    #[test]
    fn shapes_and_bounds() {
        let mut r = rng();
        for corr in [Correlation::Independent, Correlation::Correlated, Correlation::AntiCorrelated]
        {
            let d = synthetic(500, 4, corr, &mut r).unwrap();
            assert_eq!(d.len(), 500);
            assert_eq!(d.dim(), 4);
            for p in d.points() {
                for &v in p {
                    assert!((0.0..=1.0).contains(&v), "{corr:?}: value {v} out of box");
                }
            }
        }
    }

    #[test]
    fn skyline_size_ordering() {
        // The defining property: |skyline(corr)| < |skyline(indep)| <
        // |skyline(anti)| for equal n, d.
        let mut r = rng();
        let n = 3000;
        let d = 4;
        let corr = skyline(&synthetic(n, d, Correlation::Correlated, &mut r).unwrap()).len();
        let ind = skyline(&synthetic(n, d, Correlation::Independent, &mut r).unwrap()).len();
        let anti = skyline(&synthetic(n, d, Correlation::AntiCorrelated, &mut r).unwrap()).len();
        assert!(corr < ind, "correlated skyline {corr} !< independent {ind}");
        assert!(ind < anti, "independent skyline {ind} !< anti-correlated {anti}");
    }

    #[test]
    fn anti_correlation_is_negative() {
        let mut r = rng();
        let d = synthetic(4000, 2, Correlation::AntiCorrelated, &mut r).unwrap();
        let xs: Vec<f64> = d.points().map(|p| p[0]).collect();
        let ys: Vec<f64> = d.points().map(|p| p[1]).collect();
        assert!(pearson(&xs, &ys) < -0.5, "correlation {}", pearson(&xs, &ys));
        let d = synthetic(4000, 2, Correlation::Correlated, &mut r).unwrap();
        let xs: Vec<f64> = d.points().map(|p| p[0]).collect();
        let ys: Vec<f64> = d.points().map(|p| p[1]).collect();
        assert!(pearson(&xs, &ys) > 0.8, "correlation {}", pearson(&xs, &ys));
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum::<f64>() / n;
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n;
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>() / n;
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let mut r = rng();
        assert!(synthetic(0, 2, Correlation::Independent, &mut r).is_err());
        assert!(synthetic(2, 0, Correlation::Independent, &mut r).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = synthetic(50, 3, Correlation::Independent, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = synthetic(50, 3, Correlation::Independent, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
