//! The update-op stream format shared by `fam replay` and the serving
//! layer's `POST /update` endpoint.
//!
//! One op per line:
//!
//! ```text
//! insert,c0,c1,...    (alias: +,c0,c1,...)
//! delete,IDX          (alias: -,IDX)
//! ```
//!
//! Blank lines and `#` comments are skipped. Delete indices refer to the
//! point set at the start of the batch the op lands in; inserted
//! coordinates must be finite and match the dataset dimensionality —
//! validated *here*, so a malformed stream is rejected with a precise
//! [`FamError::Parse`] (source + 1-based line number) before any
//! coordinates reach `ScoreMatrix::insert_points` or abort a long-lived
//! server worker.

use std::path::Path;

use fam_core::{FamError, Result};

/// One parsed update operation.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Insert a point with the given coordinates (dataset dimensionality).
    Insert(Vec<f64>),
    /// Delete the point at this index (pre-batch indexing, swap-remove
    /// order).
    Delete(usize),
}

/// Parses an update-op stream. `dim` is the dataset dimensionality every
/// insert must match; `source` labels the stream in errors (a file path,
/// or e.g. "request body").
///
/// # Errors
///
/// Returns [`FamError::Parse`] with `source` and the 1-based line number
/// for empty or unknown op kinds, wrong arity, unparsable or non-finite
/// coordinates, and malformed delete indices.
pub fn parse_update_ops(text: &str, dim: usize, source: &str) -> Result<Vec<UpdateOp>> {
    let mut ops = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = lineno + 1;
        let mut fields = line.split(',');
        // `split` yields at least one field even on an empty string, so
        // this `next()` cannot fail — but the field itself can be blank
        // (a line like `,1,2`), which must be a parse error, not a panic
        // or a silent fall-through.
        let kind = fields.next().unwrap_or("").trim();
        match kind {
            "insert" | "+" => {
                let mut coords = Vec::with_capacity(dim);
                for f in fields {
                    let f = f.trim();
                    let c: f64 = f.parse().map_err(|_| {
                        FamError::parse(source, lineno, format!("`{f}` is not a coordinate"))
                    })?;
                    if !c.is_finite() {
                        return Err(FamError::parse(
                            source,
                            lineno,
                            format!("non-finite coordinate `{f}`"),
                        ));
                    }
                    coords.push(c);
                }
                if coords.len() != dim {
                    return Err(FamError::parse(
                        source,
                        lineno,
                        format!("expected {dim} coordinates, got {}", coords.len()),
                    ));
                }
                ops.push(UpdateOp::Insert(coords));
            }
            "delete" | "-" => {
                let idx = fields
                    .next()
                    .ok_or_else(|| FamError::parse(source, lineno, "delete needs an index"))?
                    .trim();
                let idx = idx.parse().map_err(|_| {
                    FamError::parse(source, lineno, format!("`{idx}` is not an index"))
                })?;
                if fields.next().is_some() {
                    return Err(FamError::parse(source, lineno, "delete takes exactly one index"));
                }
                ops.push(UpdateOp::Delete(idx));
            }
            "" => {
                return Err(FamError::parse(source, lineno, "empty op kind (insert|delete)"));
            }
            other => {
                return Err(FamError::parse(
                    source,
                    lineno,
                    format!("unknown op `{other}` (insert|delete)"),
                ));
            }
        }
    }
    Ok(ops)
}

/// Reads and parses an update-op stream from a file; errors carry the
/// file path as their source.
///
/// # Errors
///
/// Returns [`FamError::Parse`] for unreadable files (line 0) and for any
/// malformed line, as [`parse_update_ops`].
pub fn read_update_ops(path: &Path, dim: usize) -> Result<Vec<UpdateOp>> {
    let source = path.display().to_string();
    let text = std::fs::read_to_string(path)
        .map_err(|e| FamError::parse(&source, 0, format!("cannot read: {e}")))?;
    parse_update_ops(&text, dim, &source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_spellings_and_skips_noise() {
        let text = "# header\n\ninsert,0.5,0.25\n+, 1.0 , 2.0 \ndelete,7\n-,0\n";
        let ops = parse_update_ops(text, 2, "test").unwrap();
        assert_eq!(
            ops,
            vec![
                UpdateOp::Insert(vec![0.5, 0.25]),
                UpdateOp::Insert(vec![1.0, 2.0]),
                UpdateOp::Delete(7),
                UpdateOp::Delete(0),
            ]
        );
        assert!(parse_update_ops("", 2, "test").unwrap().is_empty());
    }

    #[test]
    fn errors_carry_source_and_line() {
        let cases: &[(&str, usize, &str)] = &[
            ("teleport,1,2\n", 1, "unknown op `teleport`"),
            ("# ok\ninsert,0.5\n", 2, "expected 2 coordinates, got 1"),
            ("insert,0.5,0.1,0.2\n", 1, "expected 2 coordinates, got 3"),
            ("insert,0.5,abc\n", 1, "`abc` is not a coordinate"),
            ("insert,0.5,NaN\n", 1, "non-finite coordinate `NaN`"),
            ("insert,inf,1.0\n", 1, "non-finite coordinate `inf`"),
            ("delete\n", 1, "delete needs an index"),
            ("delete,notanumber\n", 1, "`notanumber` is not an index"),
            ("delete,-3\n", 1, "`-3` is not an index"),
            ("delete,1,2\n", 1, "delete takes exactly one index"),
            (",1,2\n", 1, "empty op kind"),
            ("insert,1,2\n\n   \ndelete,x\n", 4, "`x` is not an index"),
        ];
        for (text, line, needle) in cases {
            match parse_update_ops(text, 2, "ops.csv") {
                Err(FamError::Parse { source, line: got, message }) => {
                    assert_eq!(source, "ops.csv", "{text:?}");
                    assert_eq!(got, *line, "{text:?}");
                    assert!(message.contains(needle), "{text:?}: {message:?}");
                }
                other => panic!("{text:?}: expected a parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn read_wraps_io_and_parse_errors_with_the_path() {
        let missing = Path::new("/definitely/not/here.csv");
        let err = read_update_ops(missing, 2).unwrap_err();
        assert!(err.to_string().contains("not/here.csv"), "{err}");

        let mut p = std::env::temp_dir();
        p.push(format!("fam_ops_{}.csv", std::process::id()));
        std::fs::write(&p, "insert,0.1,0.2\nwarp,1\n").unwrap();
        let err = read_update_ops(&p, 2).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("warp"), "{msg}");
        assert_eq!(read_update_ops(&p, 2).unwrap_err(), err);
        std::fs::remove_file(&p).ok();
    }
}
