//! Synthetic NBA roster for the Table II experiment.
//!
//! The paper selects 5 players from 664 NBA players (2013–2016, 22
//! statistical categories) with three algorithms and compares the chosen
//! sets. The real roster is not redistributable, so this module generates
//! a roster with the same shape and the structural features the paper's
//! discussion relies on: position archetypes whose strengths occupy
//! different statistical categories (scorers, rebounders, playmakers,
//! defenders, all-rounders) and a small elite tier in each archetype, so
//! that a good representative set mixes complementary archetypes.

use fam_core::randext::normal;
use fam_core::{Dataset, Result};
use rand::{Rng, RngCore};

/// Number of players in the paper's Table II roster.
pub const ROSTER_SIZE: usize = 664;
/// Number of statistical categories in the paper's Table II roster.
pub const ROSTER_DIMS: usize = 22;

/// Player archetypes used by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Archetype {
    /// High scoring volume (points, field goals, free throws...).
    Scorer,
    /// Dominant on the boards and rim protection.
    Rebounder,
    /// Assists, steals, pace.
    Playmaker,
    /// Perimeter defense, hustle categories.
    Defender,
    /// Solid across the board.
    AllRounder,
}

impl Archetype {
    /// Short label used in synthetic player names.
    pub fn tag(self) -> &'static str {
        match self {
            Archetype::Scorer => "SCO",
            Archetype::Rebounder => "REB",
            Archetype::Playmaker => "PLY",
            Archetype::Defender => "DEF",
            Archetype::AllRounder => "ALL",
        }
    }

    fn all() -> [Archetype; 5] {
        [
            Archetype::Scorer,
            Archetype::Rebounder,
            Archetype::Playmaker,
            Archetype::Defender,
            Archetype::AllRounder,
        ]
    }

    /// Which stat categories (out of [`ROSTER_DIMS`]) the archetype is
    /// strong in. Categories 0..6 scoring, 6..11 rebounding/interior,
    /// 11..16 playmaking, 16..20 defense, 20..22 durability/minutes.
    fn strong_categories(self) -> std::ops::Range<usize> {
        match self {
            Archetype::Scorer => 0..6,
            Archetype::Rebounder => 6..11,
            Archetype::Playmaker => 11..16,
            Archetype::Defender => 16..20,
            Archetype::AllRounder => 0..20,
        }
    }
}

/// A generated roster: the dataset plus per-player archetypes.
#[derive(Debug, Clone)]
pub struct Roster {
    /// Normalized player statistics (each category max-scaled to 1).
    pub dataset: Dataset,
    /// Archetype of each player.
    pub archetypes: Vec<Archetype>,
}

/// Generates a Table-II-shaped roster: [`ROSTER_SIZE`] players over
/// [`ROSTER_DIMS`] categories, labelled `"{TAG}{elite?}-{index}"`.
///
/// # Errors
///
/// Never fails in practice; `Result` for interface uniformity.
pub fn roster(rng: &mut dyn RngCore) -> Result<Roster> {
    roster_with_size(ROSTER_SIZE, rng)
}

/// Generates a smaller roster with the same structure (for fast tests).
///
/// # Errors
///
/// Returns an error when `n == 0`.
pub fn roster_with_size(n: usize, rng: &mut dyn RngCore) -> Result<Roster> {
    let archetype_list = Archetype::all();
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut archetypes = Vec::with_capacity(n);
    // Every archetype gets the same expected stat *total*, so that under
    // uniform linear utilities no archetype dominates in expectation and
    // the favourite rotates with the sampled weights — mirroring how real
    // rosters trade scoring volume against boards, assists, and defense.
    const TARGET_TOTAL: f64 = 8.3;
    const STRONG: f64 = 0.85;
    for i in 0..n {
        let archetype = archetype_list[i % archetype_list.len()];
        // ~4% of players form the elite tier of their archetype.
        let elite = rng.gen_bool(0.04);
        let strong = archetype.strong_categories();
        let n_strong = strong.len() as f64;
        let strong_mean = if archetype == Archetype::AllRounder {
            TARGET_TOTAL / (n_strong + 0.5 * (ROSTER_DIMS as f64 - n_strong))
        } else {
            STRONG
        };
        let weak_mean = if archetype == Archetype::AllRounder {
            strong_mean * 0.5
        } else {
            (TARGET_TOTAL - n_strong * STRONG) / (ROSTER_DIMS as f64 - n_strong)
        };
        let boost = if elite { 1.18 } else { 1.0 };
        let mut stats = Vec::with_capacity(ROSTER_DIMS);
        for c in 0..ROSTER_DIMS {
            let mean = if strong.contains(&c) { strong_mean * boost } else { weak_mean };
            stats.push((mean + normal(rng, 0.0, 0.08)).clamp(0.0, 1.0));
        }
        rows.push(stats);
        labels.push(format!("{}{}-{:03}", archetype.tag(), if elite { "*" } else { "" }, i));
        archetypes.push(archetype);
    }
    let dataset = Dataset::from_rows(rows)?.normalized_max().with_labels(labels)?;
    Ok(Roster { dataset, archetypes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_roster_shape() {
        let mut rng = StdRng::seed_from_u64(664);
        let r = roster(&mut rng).unwrap();
        assert_eq!(r.dataset.len(), ROSTER_SIZE);
        assert_eq!(r.dataset.dim(), ROSTER_DIMS);
        assert_eq!(r.archetypes.len(), ROSTER_SIZE);
        assert!(r.dataset.label(0).is_some());
    }

    #[test]
    fn archetypes_dominate_their_categories() {
        let mut rng = StdRng::seed_from_u64(7);
        let r = roster_with_size(500, &mut rng).unwrap();
        // Mean scoring stat of scorers must exceed that of rebounders.
        let mean_in = |arch: Archetype, range: std::ops::Range<usize>| -> f64 {
            let mut acc = 0.0;
            let mut cnt = 0;
            for (i, a) in r.archetypes.iter().enumerate() {
                if *a == arch {
                    let p = r.dataset.point(i);
                    acc += range.clone().map(|c| p[c]).sum::<f64>() / range.len() as f64;
                    cnt += 1;
                }
            }
            acc / cnt as f64
        };
        let scorer_scoring = mean_in(Archetype::Scorer, 0..6);
        let rebounder_scoring = mean_in(Archetype::Rebounder, 0..6);
        let rebounder_boards = mean_in(Archetype::Rebounder, 6..11);
        assert!(scorer_scoring > rebounder_scoring + 0.1);
        assert!(rebounder_boards > rebounder_scoring + 0.1);
    }

    #[test]
    fn elite_labels_are_marked() {
        let mut rng = StdRng::seed_from_u64(9);
        let r = roster_with_size(400, &mut rng).unwrap();
        let elites = (0..400).filter(|&i| r.dataset.label(i).unwrap().contains('*')).count();
        assert!(elites > 2, "expected some elite players, got {elites}");
        assert!(elites < 60, "too many elite players: {elites}");
    }

    #[test]
    fn zero_size_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(roster_with_size(0, &mut rng).is_err());
    }
}
