//! Simulated stand-ins for the paper's real datasets (Table IV).
//!
//! The originals (IPUMS Household, UCI Forest Cover / US Census,
//! basketball-reference NBA) are not redistributable, so each is replaced
//! by a structured synthetic generator with the same cardinality and
//! dimensionality and a comparable correlation profile: a few positively
//! correlated attribute blocks (physical quantities that move together), an
//! anti-correlated block (trade-offs), and heavy-tailed marginals — the
//! features that drive skyline size and therefore algorithm behaviour. See
//! DESIGN.md §4 for the substitution argument.

use fam_core::randext::{gamma, normal};
use fam_core::{Dataset, FamError, Result};
use rand::{Rng, RngCore};

/// The real datasets of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealDataset {
    /// IPUMS Household, 6 attributes, 127,931 points.
    Household6d,
    /// UCI Forest Cover sample, 11 attributes, 100,000 points.
    ForestCover,
    /// UCI US Census sample, 10 attributes, 100,000 points.
    UsCensus,
    /// NBA player seasons, 15 attributes, 16,915 points.
    Nba,
}

impl RealDataset {
    /// The paper's cardinality for this dataset.
    pub fn n(self) -> usize {
        match self {
            RealDataset::Household6d => 127_931,
            RealDataset::ForestCover => 100_000,
            RealDataset::UsCensus => 100_000,
            RealDataset::Nba => 16_915,
        }
    }

    /// The paper's dimensionality for this dataset.
    pub fn d(self) -> usize {
        match self {
            RealDataset::Household6d => 6,
            RealDataset::ForestCover => 11,
            RealDataset::UsCensus => 10,
            RealDataset::Nba => 15,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            RealDataset::Household6d => "Household-6d",
            RealDataset::ForestCover => "Forest Cover",
            RealDataset::UsCensus => "US Census",
            RealDataset::Nba => "NBA",
        }
    }

    /// All four datasets, in the paper's figure order.
    pub fn all() -> [RealDataset; 4] {
        [
            RealDataset::Household6d,
            RealDataset::ForestCover,
            RealDataset::UsCensus,
            RealDataset::Nba,
        ]
    }
}

/// Generates the full-size simulated stand-in for `which`.
///
/// # Errors
///
/// Never fails for the built-in specs; returns `Result` to match the
/// scaled variant.
pub fn simulated(which: RealDataset, rng: &mut dyn RngCore) -> Result<Dataset> {
    simulated_with_size(which, which.n(), rng)
}

/// Generates a smaller version with the same structure — used when the
/// full cardinality makes an experiment needlessly slow.
///
/// # Errors
///
/// Returns an error when `n == 0`.
pub fn simulated_with_size(which: RealDataset, n: usize, rng: &mut dyn RngCore) -> Result<Dataset> {
    if n == 0 {
        return Err(FamError::EmptyDataset);
    }
    let d = which.d();
    // Profile: how many leading dimensions form the positively correlated
    // block, how many the anti-correlated block; the rest are independent
    // heavy-tailed "count" attributes.
    let (corr_dims, anti_dims, tail_shape) = match which {
        RealDataset::Household6d => (2usize, 2usize, 1.2f64),
        RealDataset::ForestCover => (4, 3, 2.0),
        RealDataset::UsCensus => (3, 3, 1.0),
        RealDataset::Nba => (5, 4, 0.8),
    };
    let mut data = Vec::with_capacity(n * d);
    for _ in 0..n {
        // Latent "quality" drives the correlated block.
        let quality: f64 = rng.gen_range(0.0..1.0);
        // Latent trade-off position drives the anti-correlated block.
        let trade: f64 = rng.gen_range(0.0..1.0);
        for j in 0..d {
            let v = if j < corr_dims {
                (quality + normal(rng, 0.0, 0.08)).clamp(0.0, 1.0)
            } else if j < corr_dims + anti_dims {
                // Alternate sign of the trade-off within the block.
                let t = if (j - corr_dims) % 2 == 0 { trade } else { 1.0 - trade };
                (t + normal(rng, 0.0, 0.05)).clamp(0.0, 1.0)
            } else {
                // Heavy-tailed count-like attribute, squashed into [0,1].
                let g = gamma(rng, tail_shape);
                (g / (g + 3.0)).clamp(0.0, 1.0)
            };
            data.push(v);
        }
    }
    Dataset::from_flat(data, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fam_geometry::skyline;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn specs_match_table_iv() {
        assert_eq!(RealDataset::Household6d.n(), 127_931);
        assert_eq!(RealDataset::Household6d.d(), 6);
        assert_eq!(RealDataset::ForestCover.n(), 100_000);
        assert_eq!(RealDataset::ForestCover.d(), 11);
        assert_eq!(RealDataset::UsCensus.n(), 100_000);
        assert_eq!(RealDataset::UsCensus.d(), 10);
        assert_eq!(RealDataset::Nba.n(), 16_915);
        assert_eq!(RealDataset::Nba.d(), 15);
        assert_eq!(RealDataset::all().len(), 4);
    }

    #[test]
    fn scaled_generation_has_right_shape() {
        let mut rng = StdRng::seed_from_u64(77);
        for which in RealDataset::all() {
            let ds = simulated_with_size(which, 2000, &mut rng).unwrap();
            assert_eq!(ds.len(), 2000);
            assert_eq!(ds.dim(), which.d());
            for p in ds.points() {
                assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
            }
        }
    }

    #[test]
    fn skylines_are_nontrivial() {
        // The anti-correlated block guarantees a skyline that grows with n
        // but stays well below n — the regime the paper's experiments need.
        let mut rng = StdRng::seed_from_u64(78);
        let ds = simulated_with_size(RealDataset::UsCensus, 5000, &mut rng).unwrap();
        let sky = skyline(&ds);
        assert!(sky.len() > 20, "skyline too small: {}", sky.len());
        assert!(sky.len() < 4000, "skyline too large: {}", sky.len());
    }

    #[test]
    fn zero_size_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(simulated_with_size(RealDataset::Nba, 0, &mut rng).is_err());
    }
}
