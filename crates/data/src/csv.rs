//! Minimal CSV persistence for datasets (no external dependencies).
//!
//! Format: optional header row `# label,dim0,dim1,...` is not used; rows
//! are `label,coord0,coord1,...` when labels are present, else plain
//! comma-separated coordinates.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use fam_core::{Dataset, FamError, Result};

/// Writes a dataset to a CSV file (one point per line; label column first
/// when labels are attached).
///
/// # Errors
///
/// Returns an I/O-wrapping error on write failure.
pub fn write_csv(dataset: &Dataset, path: &Path) -> Result<()> {
    let file = File::create(path).map_err(|e| io_err("create", path, &e))?;
    let mut w = BufWriter::new(file);
    for i in 0..dataset.len() {
        let coords: Vec<String> = dataset.point(i).iter().map(|v| format!("{v}")).collect();
        let line = match dataset.label(i) {
            Some(l) => format!("{l},{}", coords.join(",")),
            None => coords.join(","),
        };
        writeln!(w, "{line}").map_err(|e| io_err("write", path, &e))?;
    }
    w.flush().map_err(|e| io_err("flush", path, &e))?;
    Ok(())
}

/// Reads a dataset from a CSV file. When `labelled` is true the first
/// column is treated as a point label.
///
/// # Errors
///
/// Returns an error for unreadable files, ragged rows, or unparsable
/// numbers.
pub fn read_csv(path: &Path, labelled: bool) -> Result<Dataset> {
    let file = File::open(path).map_err(|e| io_err("open", path, &e))?;
    let reader = BufReader::new(file);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| io_err("read", path, &e))?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        if labelled {
            labels.push(
                fields
                    .next()
                    .ok_or_else(|| FamError::InvalidParameter {
                        name: "csv",
                        message: format!("line {} is empty", lineno + 1),
                    })?
                    .to_string(),
            );
        }
        let coords: std::result::Result<Vec<f64>, _> =
            fields.map(|f| f.trim().parse::<f64>()).collect();
        rows.push(coords.map_err(|e| FamError::InvalidParameter {
            name: "csv",
            message: format!("line {}: {e}", lineno + 1),
        })?);
    }
    let ds = Dataset::from_rows(rows)?;
    if labelled {
        ds.with_labels(labels)
    } else {
        Ok(ds)
    }
}

fn io_err(op: &str, path: &Path, e: &dyn std::fmt::Display) -> FamError {
    FamError::InvalidParameter { name: "io", message: format!("{op} {}: {e}", path.display()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fam_csv_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_without_labels() {
        let path = tmp("plain.csv");
        let d = Dataset::from_rows(vec![vec![0.25, 0.5], vec![1.0, 0.125]]).unwrap();
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, false).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_with_labels() {
        let path = tmp("labelled.csv");
        let d = Dataset::from_rows(vec![vec![0.1], vec![0.9]])
            .unwrap()
            .with_labels(vec!["a".into(), "b".into()])
            .unwrap();
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, true).unwrap();
        assert_eq!(back.label(0), Some("a"));
        assert_eq!(back.label(1), Some("b"));
        assert_eq!(back.point(1), &[0.9]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n0.5,0.5\n\n0.25,0.75\n").unwrap();
        let d = read_csv(&path, false).unwrap();
        assert_eq!(d.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reports_parse_errors() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "0.5,oops\n").unwrap();
        assert!(read_csv(&path, false).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(read_csv(Path::new("/nonexistent/fam.csv"), false).is_err());
    }
}
