//! Synthetic ratings data with the shape of the Yahoo!Music KDD-Cup 2011
//! set used in Section V-B2: a song catalogue rated sparsely by users whose
//! preferences cluster into a handful of taste groups — precisely the
//! structure the paper's 5-component Gaussian mixture is meant to capture.

use fam_core::randext::{normal, standard_normal};
use fam_core::{FamError, Result};
use fam_ml::Ratings;
use rand::{Rng, RngCore};

/// Number of data points (songs) in the paper's Yahoo!Music database.
pub const YAHOO_CATALOGUE: usize = 8_933;

/// Configuration for the synthetic ratings generator.
#[derive(Debug, Clone, Copy)]
pub struct YahooConfig {
    /// Number of users providing ratings.
    pub n_users: usize,
    /// Number of songs in the catalogue.
    pub n_items: usize,
    /// Latent dimensionality of the ground-truth model.
    pub n_factors: usize,
    /// Number of latent taste clusters (the paper fits a 5-component GMM).
    pub n_clusters: usize,
    /// Probability that a given (user, song) pair is rated.
    pub density: f64,
    /// Observation noise on ratings.
    pub noise: f64,
}

impl Default for YahooConfig {
    fn default() -> Self {
        YahooConfig {
            n_users: 1_000,
            n_items: YAHOO_CATALOGUE,
            n_factors: 8,
            n_clusters: 5,
            density: 0.02,
            noise: 0.05,
        }
    }
}

/// Synthesizes clustered low-rank ratings.
///
/// # Errors
///
/// Returns an error for degenerate configurations (zero sizes, density
/// outside `(0, 1]`).
pub fn ratings(cfg: YahooConfig, rng: &mut dyn RngCore) -> Result<Ratings> {
    if cfg.n_users == 0 || cfg.n_items == 0 || cfg.n_factors == 0 || cfg.n_clusters == 0 {
        return Err(FamError::EmptyDataset);
    }
    if !(cfg.density > 0.0 && cfg.density <= 1.0) {
        return Err(FamError::InvalidParameter {
            name: "density",
            message: format!("must be in (0, 1], got {}", cfg.density),
        });
    }
    // Ground-truth taste clusters in latent space. Centers are *sparse*
    // and directionally diverse — each cluster concentrates its mass on
    // its own subset of latent genres — so different clusters genuinely
    // favour different songs. (Nearly-parallel centers would make one song
    // everyone's favourite and collapse the FAM problem to triviality.)
    let centers: Vec<Vec<f64>> = (0..cfg.n_clusters)
        .map(|c| {
            (0..cfg.n_factors)
                .map(|f| {
                    if f % cfg.n_clusters == c {
                        rng.gen_range(0.7..1.2)
                    } else {
                        rng.gen_range(0.0..0.15)
                    }
                })
                .collect()
        })
        .collect();
    // Item factors are genre-sparse too: a song is strong in its own
    // genre's latent dimensions and weak elsewhere. Without this, the
    // near-(1,…,1) item of an i.i.d. box sample dominates every positive
    // direction and a single song becomes everyone's favourite.
    let items: Vec<Vec<f64>> = (0..cfg.n_items)
        .map(|i| {
            let genre = i % cfg.n_clusters;
            (0..cfg.n_factors)
                .map(|f| {
                    if f % cfg.n_clusters == genre {
                        rng.gen_range(0.5..1.0)
                    } else {
                        rng.gen_range(0.0..0.2)
                    }
                })
                .collect()
        })
        .collect();
    let mut triplets = Vec::new();
    for u in 0..cfg.n_users {
        let c = &centers[u % cfg.n_clusters];
        // Per-coordinate noise is *not* clamped: latent user factors may be
        // negative (as learned MF factors are); only ratings are clamped.
        let user: Vec<f64> = c.iter().map(|&m| m + 0.45 * standard_normal(rng)).collect();
        for (i, item) in items.iter().enumerate() {
            if rng.gen_bool(cfg.density) {
                let mut r: f64 = user.iter().zip(item).map(|(a, b)| a * b).sum();
                r += normal(rng, 0.0, cfg.noise);
                triplets.push((u as u32, i as u32, r.max(0.0)));
            }
        }
    }
    Ratings::new(triplets, cfg.n_users, cfg.n_items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> YahooConfig {
        YahooConfig { n_users: 100, n_items: 200, density: 0.15, ..Default::default() }
    }

    #[test]
    fn generates_expected_density() {
        let mut rng = StdRng::seed_from_u64(2011);
        let r = ratings(small_cfg(), &mut rng).unwrap();
        assert_eq!(r.n_users(), 100);
        assert_eq!(r.n_items(), 200);
        let expected = 100.0 * 200.0 * 0.15;
        let got = r.len() as f64;
        assert!((got - expected).abs() < expected * 0.2, "density off: {got} vs {expected}");
    }

    #[test]
    fn ratings_are_nonnegative_and_finite() {
        let mut rng = StdRng::seed_from_u64(2012);
        let r = ratings(small_cfg(), &mut rng).unwrap();
        for &(_, _, v) in r.triplets() {
            assert!(v.is_finite() && v >= 0.0);
        }
    }

    #[test]
    fn clustered_users_rate_consistently() {
        // Users in the same cluster should agree more than users in
        // different clusters. Use dense observations for a clean signal.
        let mut rng = StdRng::seed_from_u64(2013);
        let cfg = YahooConfig {
            n_users: 20,
            n_items: 60,
            density: 1.0,
            noise: 0.01,
            n_clusters: 2,
            ..Default::default()
        };
        let r = ratings(cfg, &mut rng).unwrap();
        // Build dense user vectors.
        let mut dense = vec![vec![0.0f64; 60]; 20];
        for &(u, i, v) in r.triplets() {
            dense[u as usize][i as usize] = v;
        }
        let corr = |a: &[f64], b: &[f64]| -> f64 {
            let n = a.len() as f64;
            let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
            let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
            let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
            let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
            cov / (va.sqrt() * vb.sqrt())
        };
        // Users 0 and 2 share a cluster; 0 and 1 do not.
        let same = corr(&dense[0], &dense[2]);
        let diff = corr(&dense[0], &dense[1]);
        assert!(same > diff, "same-cluster corr {same} should beat cross {diff}");
    }

    #[test]
    fn config_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ratings(YahooConfig { n_users: 0, ..small_cfg() }, &mut rng).is_err());
        assert!(ratings(YahooConfig { density: 0.0, ..small_cfg() }, &mut rng).is_err());
        assert!(ratings(YahooConfig { density: 1.5, ..small_cfg() }, &mut rng).is_err());
    }
}
