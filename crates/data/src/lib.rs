//! # fam-data
//!
//! Workload generation for the FAM reproduction: Börzsönyi-style synthetic
//! datasets (independent / correlated / anti-correlated), structured
//! simulated stand-ins for the paper's four real datasets (Table IV), the
//! Table II NBA roster generator, synthetic Yahoo!Music-shaped ratings for
//! the learned-utility pipeline, and CSV persistence.
//!
//! The originals of the "real" datasets are not redistributable; DESIGN.md
//! §4 documents each substitution and why it preserves the measured
//! behaviour.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod nba;
pub mod ops;
pub mod registry;
pub mod synthetic;
pub mod yahoo;

pub use csv::{read_csv, write_csv};
pub use nba::{roster, roster_with_size, Archetype, Roster, ROSTER_DIMS, ROSTER_SIZE};
pub use ops::{parse_update_ops, read_update_ops, UpdateOp};
pub use registry::{simulated, simulated_with_size, RealDataset};
pub use synthetic::{synthetic, Correlation};
pub use yahoo::{ratings as yahoo_ratings, YahooConfig, YAHOO_CATALOGUE};
