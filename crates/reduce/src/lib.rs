//! # fam-reduce
//!
//! Candidate reduction for FAM solvers: shrink the point universe a
//! solver sees **before** any `N × n` matrix is built, then map the
//! answer back to original point ids.
//!
//! Dense scoring is the wrong asymptote for production-sized `n`. The
//! k-regret literature (Agarwal et al.; Chester et al. — see PAPERS.md)
//! shows the candidate set can be shrunk in two stages with controlled
//! loss:
//!
//! * [`SkylineReducer`] — **exact**: for every monotone utility the
//!   skyline contains a best point, so restricting candidates to the
//!   skyline changes no objective value (bit-identical for exact solvers;
//!   see `docs/REDUCTION.md` for the fp-level argument).
//! * [`CoresetReducer`] — **ε-kernel-style**: keeps each per-direction
//!   argmax over a deterministic net of positive-orthant directions, with
//!   a declared regret target `ε`. Sound for heuristic solvers; the
//!   achieved loss is reported by the tiled build's shortfall stats and
//!   the reduction bench.
//!
//! The pipeline composes as *skyline → coreset* and produces a
//! [`Reduction`]: the ascending kept original ids plus the remap that
//! the registry (`fam-algos`), the engine facade, the CLI, and
//! `fam-serve` apply to every [`fam_core::SolveOutput`] — callers always
//! see original point ids. Everything here is deterministic and
//! single-pass (no RNG, no ambient state), so reductions are
//! bit-identical across runs, thread counts, and feature configurations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod reducers;
pub mod reduction;

pub use reducers::{CandidateReducer, CoresetReducer, SkylineReducer};
pub use reduction::{Reduction, ReductionRepair};

use fam_core::solve::{ReduceKind, SolverParams, DEFAULT_REDUCE_EPS};
use fam_core::{FamError, Result};

/// A fully-specified reduction request: which stage pipeline to run and
/// the coreset's declared regret target. This is the unit that travels
/// into cache keys (via [`ReduceSpec::fingerprint`]) so reduced and
/// unreduced answers can never alias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReduceSpec {
    /// The stage pipeline to run.
    pub kind: ReduceKind,
    /// Declared regret target for the coreset stage (ignored otherwise).
    pub eps: f64,
}

impl ReduceSpec {
    /// No reduction.
    pub fn none() -> Self {
        ReduceSpec { kind: ReduceKind::None, eps: DEFAULT_REDUCE_EPS }
    }

    /// Skyline-only reduction (exact).
    pub fn skyline() -> Self {
        ReduceSpec { kind: ReduceKind::Skyline, eps: DEFAULT_REDUCE_EPS }
    }

    /// Skyline → coreset reduction with regret target `eps`.
    pub fn coreset(eps: f64) -> Self {
        ReduceSpec { kind: ReduceKind::Coreset, eps }
    }

    /// The spec a parsed parameter set asks for.
    pub fn from_params(params: &SolverParams) -> Self {
        ReduceSpec { kind: params.reduce, eps: params.reduce_eps }
    }

    /// True when no reduction is requested.
    pub fn is_none(&self) -> bool {
        self.kind == ReduceKind::None
    }

    /// Validates the spec's scalar parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FamError::InvalidParameter`] when the coreset `eps` is
    /// not in `(0, 1)`.
    pub fn validate(&self) -> Result<()> {
        if self.kind == ReduceKind::Coreset && !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(FamError::InvalidParameter {
                name: "reduce_eps",
                message: format!("must be in (0, 1), got {}", self.eps),
            });
        }
        Ok(())
    }

    /// Canonical cache-key component: `"none"`, `"skyline"`, or
    /// `"skyline+coreset:<eps>"`. Floats format with their shortest
    /// round-trip decimal, so distinct `eps` values always produce
    /// distinct fingerprints.
    pub fn fingerprint(&self) -> String {
        match self.kind {
            ReduceKind::None => "none".to_string(),
            ReduceKind::Skyline => "skyline".to_string(),
            ReduceKind::Coreset => format!("skyline+coreset:{}", self.eps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_distinguish_specs() {
        assert_eq!(ReduceSpec::none().fingerprint(), "none");
        assert_eq!(ReduceSpec::skyline().fingerprint(), "skyline");
        assert_eq!(ReduceSpec::coreset(0.05).fingerprint(), "skyline+coreset:0.05");
        assert_ne!(
            ReduceSpec::coreset(0.05).fingerprint(),
            ReduceSpec::coreset(0.050000001).fingerprint(),
            "distinct eps must never alias in a cache key"
        );
    }

    #[test]
    fn validation_bounds_eps() {
        assert!(ReduceSpec::coreset(0.05).validate().is_ok());
        assert!(ReduceSpec::coreset(0.0).validate().is_err());
        assert!(ReduceSpec::coreset(1.0).validate().is_err());
        assert!(ReduceSpec::coreset(f64::NAN).validate().is_err());
        // eps is ignored (and unvalidated) for the eps-free stages.
        assert!(ReduceSpec { kind: ReduceKind::Skyline, eps: 9.0 }.validate().is_ok());
        assert!(ReduceSpec::none().validate().is_ok());
        assert!(ReduceSpec::none().is_none());
    }

    #[test]
    fn from_params_reads_the_reduce_fields() {
        let mut p = SolverParams::new(3);
        assert!(ReduceSpec::from_params(&p).is_none());
        p.reduce = ReduceKind::Coreset;
        p.reduce_eps = 0.1;
        let spec = ReduceSpec::from_params(&p);
        assert_eq!(spec, ReduceSpec::coreset(0.1));
    }
}
