//! The composed reduction pipeline and its result: original-id
//! bookkeeping, output remapping, and incremental repair under dynamic
//! updates.

use std::ops::Range;

use fam_core::solve::{ReduceKind, SolveOutput};
use fam_core::{Dataset, FamError, Result};
use fam_geometry::dominance::{dom_compare, DomOrdering};

use crate::reducers::{CandidateReducer, CoresetReducer, SkylineReducer};
use crate::ReduceSpec;

/// The result of running a [`ReduceSpec`] pipeline over a dataset: which
/// original points survived, stage by stage, plus the remap every
/// consumer applies so callers only ever see original point ids.
///
/// `kept` is strictly ascending, so reduced index `j` corresponds to
/// original id `kept[j]` and the remap preserves the sortedness of
/// selections.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    spec: ReduceSpec,
    source_len: usize,
    /// Stage-1 (skyline) survivors — equals `kept` unless a coreset
    /// stage ran. Retained so dynamic repair can maintain the exact
    /// skyline and re-derive the coreset from it.
    skyline: Vec<usize>,
    /// Final kept original ids, ascending.
    kept: Vec<usize>,
}

/// What [`Reduction::repair`] decided about an update batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ReductionRepair {
    /// The reduction was repaired incrementally; the result is identical
    /// to a fresh [`Reduction::compute`] over the updated dataset.
    Repaired(Reduction),
    /// A kept (skyline) point was deleted — the skyline can only grow
    /// back from points the reduction no longer tracks, so the caller
    /// must recompute from scratch.
    Recompute,
}

impl Reduction {
    /// Runs the spec's stage pipeline over `dataset`.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty dataset or an invalid spec.
    pub fn compute(dataset: &Dataset, spec: ReduceSpec) -> Result<Reduction> {
        spec.validate()?;
        let n = dataset.len();
        if n == 0 {
            return Err(FamError::EmptyDataset);
        }
        let all: Vec<usize> = (0..n).collect();
        let (skyline, kept) = match spec.kind {
            ReduceKind::None => (all.clone(), all),
            ReduceKind::Skyline => {
                let sky = SkylineReducer.reduce(dataset, &all)?;
                (sky.clone(), sky)
            }
            ReduceKind::Coreset => {
                let sky = SkylineReducer.reduce(dataset, &all)?;
                let core = CoresetReducer::new(spec.eps)?.reduce(dataset, &sky)?;
                (sky, core)
            }
        };
        Ok(Reduction { spec, source_len: n, skyline, kept })
    }

    /// The spec this reduction was computed under.
    pub fn spec(&self) -> ReduceSpec {
        self.spec
    }

    /// Cache-key component; see [`ReduceSpec::fingerprint`].
    pub fn fingerprint(&self) -> String {
        self.spec.fingerprint()
    }

    /// Final kept original ids, strictly ascending.
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// Points in the dataset the reduction was computed over.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Stage-1 (skyline) survivor count.
    pub fn skyline_len(&self) -> usize {
        self.skyline.len()
    }

    /// `kept / source` — the fraction of the universe solvers still see.
    pub fn kept_fraction(&self) -> f64 {
        self.kept.len() as f64 / self.source_len as f64
    }

    /// Materializes the reduced dataset (labels carried along).
    ///
    /// # Errors
    ///
    /// Returns an error when `full` is not the dataset this reduction
    /// was computed over (length mismatch).
    pub fn restrict_dataset(&self, full: &Dataset) -> Result<Dataset> {
        if full.len() != self.source_len {
            return Err(FamError::DimensionMismatch { expected: self.source_len, got: full.len() });
        }
        full.subset(&self.kept)
    }

    /// Maps original point ids into the reduced index space — the inbound
    /// remap for warm-start seeds.
    ///
    /// # Errors
    ///
    /// Returns [`FamError::InvalidParameter`] when an id was pruned by
    /// the reduction (callers should re-seed or solve with
    /// `reduce=none`), [`FamError::IndexOutOfBounds`] when it never
    /// existed.
    pub fn to_reduced(&self, original: &[usize]) -> Result<Vec<usize>> {
        original
            .iter()
            .map(|&id| {
                if id >= self.source_len {
                    return Err(FamError::IndexOutOfBounds { index: id, len: self.source_len });
                }
                self.kept.binary_search(&id).map_err(|_| FamError::InvalidParameter {
                    name: "seed",
                    message: format!(
                        "seed point {id} was pruned by the `{}` reduction; \
                         re-seed from kept points or solve with reduce=none",
                        self.fingerprint()
                    ),
                })
            })
            .collect()
    }

    /// Maps one reduced index back to its original id.
    ///
    /// # Errors
    ///
    /// Returns [`FamError::IndexOutOfBounds`] for an index outside the
    /// kept universe.
    pub fn to_original(&self, reduced: usize) -> Result<usize> {
        self.kept
            .get(reduced)
            .copied()
            .ok_or(FamError::IndexOutOfBounds { index: reduced, len: self.kept.len() })
    }

    /// Rewrites a solver output produced on the reduced universe so its
    /// selection carries original point ids. Ascending order is preserved
    /// (the remap is strictly monotone); the objective value and notes
    /// are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`FamError::IndexOutOfBounds`] when the output indexes
    /// outside the kept universe.
    pub fn remap_output(&self, out: &mut SolveOutput) -> Result<()> {
        for idx in &mut out.selection.indices {
            *idx = self
                .kept
                .get(*idx)
                .copied()
                .ok_or(FamError::IndexOutOfBounds { index: *idx, len: self.kept.len() })?;
        }
        Ok(())
    }

    /// Incrementally repairs the reduction after a dynamic update batch,
    /// given the updated dataset, the old→new id remap (`None` =
    /// deleted, swap-remove semantics), and the new-id range of appended
    /// points.
    ///
    /// Deleting a non-kept point never changes the skyline; an inserted
    /// point joins the skyline window unless a member dominates it, and
    /// evicts members it dominates (exact by transitivity of dominance).
    /// A coreset stage is then re-derived from the repaired skyline, so a
    /// [`ReductionRepair::Repaired`] result is **identical** to a fresh
    /// [`Reduction::compute`] over the updated dataset. Deleting a
    /// skyline member surfaces points the reduction no longer tracks —
    /// that returns [`ReductionRepair::Recompute`] instead of guessing.
    ///
    /// # Errors
    ///
    /// Returns an error when `remap` does not cover the pre-update
    /// universe or the mapped/appended ids fall outside `after`.
    pub fn repair(
        &self,
        after: &Dataset,
        remap: &[Option<u32>],
        appended: Range<usize>,
    ) -> Result<ReductionRepair> {
        if remap.len() != self.source_len {
            return Err(FamError::DimensionMismatch {
                expected: self.source_len,
                got: remap.len(),
            });
        }
        let mut window = Vec::with_capacity(self.skyline.len() + appended.len());
        for &old in &self.skyline {
            match remap[old] {
                Some(new) => {
                    let new = new as usize;
                    if new >= after.len() {
                        return Err(FamError::IndexOutOfBounds { index: new, len: after.len() });
                    }
                    window.push(new);
                }
                None => return Ok(ReductionRepair::Recompute),
            }
        }
        for id in appended.clone() {
            if id >= after.len() {
                return Err(FamError::IndexOutOfBounds { index: id, len: after.len() });
            }
            let p = after.point(id);
            let mut dominated = false;
            let mut w = 0;
            while w < window.len() {
                match dom_compare(after.point(window[w]), p) {
                    DomOrdering::Dominates => {
                        dominated = true;
                        break;
                    }
                    DomOrdering::DominatedBy => {
                        window.swap_remove(w);
                    }
                    DomOrdering::Equal | DomOrdering::Incomparable => w += 1,
                }
            }
            if !dominated {
                window.push(id);
            }
        }
        window.sort_unstable();
        let kept = match self.spec.kind {
            ReduceKind::Coreset => CoresetReducer::new(self.spec.eps)?.reduce(after, &window)?,
            _ => window.clone(),
        };
        Ok(ReductionRepair::Repaired(Reduction {
            spec: self.spec,
            source_len: after.len(),
            skyline: window,
            kept,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ds(rows: Vec<Vec<f64>>) -> Dataset {
        Dataset::from_rows(rows).unwrap()
    }

    fn random_ds(rng: &mut StdRng, n: usize, d: usize) -> Dataset {
        ds((0..n).map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect()).collect())
    }

    #[test]
    fn compute_and_remap_round_trip() {
        let data = ds(vec![
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.4, 0.4], // dominated
            vec![0.0, 1.0],
        ]);
        let r = Reduction::compute(&data, ReduceSpec::skyline()).unwrap();
        assert_eq!(r.kept(), &[0, 1, 3]);
        assert_eq!((r.source_len(), r.skyline_len()), (4, 3));
        assert!((r.kept_fraction() - 0.75).abs() < 1e-12);
        let reduced = r.restrict_dataset(&data).unwrap();
        assert_eq!(reduced.len(), 3);
        assert_eq!(reduced.point(2), data.point(3));
        // Original → reduced → original round-trips.
        assert_eq!(r.to_reduced(&[0, 3]).unwrap(), vec![0, 2]);
        assert_eq!(r.to_original(2).unwrap(), 3);
        assert!(r.to_reduced(&[2]).is_err(), "pruned seed points are rejected");
        assert!(r.to_reduced(&[9]).is_err());
        assert!(r.to_original(3).is_err());
        let mut out = SolveOutput::new(fam_core::Selection::new(vec![0, 2], "test"));
        r.remap_output(&mut out).unwrap();
        assert_eq!(out.selection.indices, vec![0, 3]);
        let mut bad = SolveOutput::new(fam_core::Selection::new(vec![7], "test"));
        assert!(r.remap_output(&mut bad).is_err());
    }

    #[test]
    fn identity_spec_keeps_everything() {
        let data = ds(vec![vec![1.0, 0.0], vec![0.5, 0.5]]);
        let r = Reduction::compute(&data, ReduceSpec::none()).unwrap();
        assert_eq!(r.kept(), &[0, 1]);
        assert_eq!(r.fingerprint(), "none");
    }

    #[test]
    fn repair_insert_matches_fresh_compute() {
        let mut rng = StdRng::seed_from_u64(17);
        for spec in [ReduceSpec::skyline(), ReduceSpec::coreset(0.1)] {
            let before = random_ds(&mut rng, 200, 3);
            let r = Reduction::compute(&before, spec).unwrap();
            // Append 40 points (no deletions): remap is the identity.
            let mut rows: Vec<Vec<f64>> = before.points().map(<[f64]>::to_vec).collect();
            for _ in 0..40 {
                rows.push((0..3).map(|_| rng.gen_range(0.0..1.0)).collect());
            }
            let after = ds(rows);
            let remap: Vec<Option<u32>> = (0..200).map(|i| Some(i as u32)).collect();
            match r.repair(&after, &remap, 200..240).unwrap() {
                ReductionRepair::Repaired(rep) => {
                    let fresh = Reduction::compute(&after, spec).unwrap();
                    assert_eq!(rep, fresh, "{spec:?}");
                }
                ReductionRepair::Recompute => panic!("insert-only batches must repair"),
            }
        }
    }

    #[test]
    fn repair_handles_deletions() {
        let data = ds(vec![
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.4, 0.4], // dominated by 1
            vec![0.0, 1.0],
        ]);
        let r = Reduction::compute(&data, ReduceSpec::skyline()).unwrap();
        // Delete the dominated point 2 (swap-remove: point 3 takes slot 2).
        let after = ds(vec![vec![1.0, 0.0], vec![0.5, 0.5], vec![0.0, 1.0]]);
        let remap = vec![Some(0), Some(1), None, Some(2)];
        match r.repair(&after, &remap, 3..3).unwrap() {
            ReductionRepair::Repaired(rep) => {
                assert_eq!(rep, Reduction::compute(&after, ReduceSpec::skyline()).unwrap());
            }
            ReductionRepair::Recompute => panic!("non-kept deletions must repair"),
        }
        // Deleting a skyline member forces a recompute.
        let remap = vec![Some(0), None, Some(1), Some(2)];
        let after = ds(vec![vec![1.0, 0.0], vec![0.4, 0.4], vec![0.0, 1.0]]);
        assert_eq!(r.repair(&after, &remap, 3..3).unwrap(), ReductionRepair::Recompute);
        // A remap that does not cover the old universe is rejected.
        assert!(r.repair(&after, &[Some(0)], 3..3).is_err());
    }

    #[test]
    fn repair_inserted_duplicates_and_dominators() {
        let data = ds(vec![vec![0.6, 0.6], vec![0.2, 0.9]]);
        let r = Reduction::compute(&data, ReduceSpec::skyline()).unwrap();
        assert_eq!(r.kept(), &[0, 1]);
        // Insert an exact duplicate of a member and a dominator of the other.
        let after = ds(vec![
            vec![0.6, 0.6],
            vec![0.2, 0.9],
            vec![0.6, 0.6], // duplicate of 0 — joins (Definition 6)
            vec![0.3, 1.0], // dominates 1 — evicts it
        ]);
        let remap = vec![Some(0), Some(1)];
        match r.repair(&after, &remap, 2..4).unwrap() {
            ReductionRepair::Repaired(rep) => {
                assert_eq!(rep.kept(), &[0, 2, 3]);
                assert_eq!(rep, Reduction::compute(&after, ReduceSpec::skyline()).unwrap());
            }
            ReductionRepair::Recompute => panic!("insert-only batches must repair"),
        }
    }
}
