//! The reduction stages: the [`CandidateReducer`] trait and its two
//! implementations, [`SkylineReducer`] (exact dominance pruning) and
//! [`CoresetReducer`] (deterministic directional ε-kernel).

use fam_core::{Dataset, FamError, Result};
use fam_geometry::dominance::{dom_compare, DomOrdering};

/// One stage of the candidate-reduction pipeline: given the dataset and
/// the ascending candidate ids that survived earlier stages, return the
/// ascending subset to keep.
///
/// Implementations must be **deterministic pure functions** of their
/// inputs — no RNG, clocks, or thread-count dependence — so composed
/// reductions are bit-identical across runs and feature configurations.
pub trait CandidateReducer {
    /// Stage name for fingerprints and diagnostics.
    fn name(&self) -> &'static str;

    /// Reduces `candidates` (ascending ids into `dataset`) to the kept
    /// subset, ascending.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/out-of-bounds candidates or invalid
    /// stage parameters.
    fn reduce(&self, dataset: &Dataset, candidates: &[usize]) -> Result<Vec<usize>>;
}

fn check_candidates(dataset: &Dataset, candidates: &[usize]) -> Result<()> {
    if candidates.is_empty() {
        return Err(FamError::EmptyDataset);
    }
    for (i, &c) in candidates.iter().enumerate() {
        if c >= dataset.len() {
            return Err(FamError::IndexOutOfBounds { index: c, len: dataset.len() });
        }
        if i > 0 && candidates[i - 1] >= c {
            return Err(FamError::InvalidParameter {
                name: "candidates",
                message: "candidate ids must be strictly ascending".into(),
            });
        }
    }
    Ok(())
}

/// Exact dominance pruning: keeps exactly the candidates not dominated by
/// another candidate. For every monotone utility function the kept set
/// contains a best point with the *same* score, so this stage loses
/// nothing — exact solvers produce bit-identical objective values on the
/// reduced universe.
#[derive(Debug, Clone, Copy, Default)]
pub struct SkylineReducer;

impl CandidateReducer for SkylineReducer {
    fn name(&self) -> &'static str {
        "skyline"
    }

    fn reduce(&self, dataset: &Dataset, candidates: &[usize]) -> Result<Vec<usize>> {
        check_candidates(dataset, candidates)?;
        if candidates.len() == dataset.len() {
            // Full universe: the dimension-dispatched algorithms
            // (`O(n log n)` sweep in 2-D, sort-filter otherwise).
            return Ok(fam_geometry::skyline(dataset));
        }
        // Subset skyline via the same sort-filter scheme: descending
        // coordinate sums guarantee a candidate can only be dominated by
        // ones already in the window.
        let sums: Vec<f64> = candidates
            .iter()
            .map(|&c| {
                let p = dataset.point(c);
                fam_core::kernels::lane_sum(p.len(), |i| p[i])
            })
            .collect();
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| sums[b].total_cmp(&sums[a]).then(candidates[a].cmp(&candidates[b])));
        let mut window: Vec<usize> = Vec::new();
        'outer: for &i in &order {
            let p = dataset.point(candidates[i]);
            for &w in &window {
                if dom_compare(dataset.point(candidates[w]), p) == DomOrdering::Dominates {
                    continue 'outer;
                }
            }
            window.push(i);
        }
        let mut kept: Vec<usize> = window.into_iter().map(|i| candidates[i]).collect();
        kept.sort_unstable();
        Ok(kept)
    }
}

/// Directional ε-kernel: keeps, for each direction of a deterministic
/// positive-orthant net, the first-strict-argmax candidate of
/// `⟨direction, point⟩`. The net always contains the coordinate axes
/// (per-dimension maxima survive) and the uniform direction, plus
/// `⌈d/ε⌉` low-discrepancy simplex directions from a Kronecker sequence
/// — pure arithmetic, no RNG, so the kept set is a deterministic
/// function of `(dataset, candidates, eps)`.
///
/// `eps` is a **declared target** on the regret the stage may introduce:
/// coarser nets (larger `eps`) keep fewer points and lose more. In 2-D
/// the net is an angular grid whose spacing shrinks linearly in `eps`;
/// in higher dimensions the net size grows only linearly in `d/ε`, so
/// the bound is heuristic — the tiled build's shortfall stats and
/// `reduction_equivalence.rs` measure the loss actually achieved. Run it
/// after [`SkylineReducer`] (the [`crate::Reduction`] pipeline always
/// does) so the scan touches only skyline members.
#[derive(Debug, Clone, Copy)]
pub struct CoresetReducer {
    /// Declared regret target in `(0, 1)`.
    pub eps: f64,
}

impl CoresetReducer {
    /// Creates the stage, validating `eps`.
    ///
    /// # Errors
    ///
    /// Returns [`FamError::InvalidParameter`] when `eps` is not in
    /// `(0, 1)`.
    pub fn new(eps: f64) -> Result<Self> {
        crate::ReduceSpec::coreset(eps).validate()?;
        Ok(CoresetReducer { eps })
    }

    /// The direction net for dimensionality `dim`: `dim` coordinate
    /// axes, the uniform direction, and `⌈dim/eps⌉` Kronecker simplex
    /// directions, flattened row-major (`dim` coordinates each).
    fn directions(&self, dim: usize) -> Vec<f64> {
        let mut dirs = Vec::new();
        // Coordinate axes: per-dimension maxima always survive.
        for j in 0..dim {
            let mut e = vec![0.0; dim];
            e[j] = 1.0;
            dirs.extend_from_slice(&e);
        }
        // The uniform direction.
        dirs.resize(dirs.len() + dim, 1.0 / dim as f64);
        if dim < 2 {
            return dirs;
        }
        // Kronecker low-discrepancy net on the simplex: the i-th point of
        // the sequence frac((i+1)·√p_j) over the first dim−1 primes,
        // mapped to simplex weights via sorted spacings. Deterministic
        // (pure arithmetic) and evenly spread for any count.
        const PRIMES: [u32; 8] = [2, 3, 5, 7, 11, 13, 17, 19];
        let count = (dim as f64 / self.eps).ceil() as usize;
        let alphas: Vec<f64> = (0..dim - 1)
            .map(|j| {
                let p = PRIMES[j % PRIMES.len()] as f64;
                // Re-rooting repeated primes keeps the coordinates
                // rationally independent past 8 dimensions.
                p.sqrt().powf(1.0 + (j / PRIMES.len()) as f64 * 0.5).fract()
            })
            .collect();
        let mut cuts = vec![0.0f64; dim - 1];
        for i in 0..count {
            for (j, a) in alphas.iter().enumerate() {
                cuts[j] = ((i + 1) as f64 * a).fract();
            }
            cuts.sort_by(f64::total_cmp);
            let mut prev = 0.0;
            for &c in cuts.iter() {
                dirs.push(c - prev);
                prev = c;
            }
            dirs.push(1.0 - prev);
        }
        dirs
    }
}

impl CandidateReducer for CoresetReducer {
    fn name(&self) -> &'static str {
        "coreset"
    }

    fn reduce(&self, dataset: &Dataset, candidates: &[usize]) -> Result<Vec<usize>> {
        check_candidates(dataset, candidates)?;
        crate::ReduceSpec::coreset(self.eps).validate()?;
        let dim = dataset.dim();
        let dirs = self.directions(dim);
        let mut keep = vec![false; candidates.len()];
        for dir in dirs.chunks_exact(dim) {
            // First-strict-argmax over candidates in ascending-id order:
            // ties keep the lowest original id, independent of net order.
            let mut best = 0usize;
            let mut best_v = f64::NEG_INFINITY;
            for (i, &c) in candidates.iter().enumerate() {
                let v = fam_core::kernels::dot(dir, dataset.point(c));
                if v > best_v {
                    best = i;
                    best_v = v;
                }
            }
            keep[best] = true;
        }
        Ok(candidates.iter().zip(&keep).filter_map(|(&c, &k)| k.then_some(c)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fam_geometry::skyline;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ds(rows: Vec<Vec<f64>>) -> Dataset {
        Dataset::from_rows(rows).unwrap()
    }

    fn random_ds(rng: &mut StdRng, n: usize, d: usize) -> Dataset {
        ds((0..n).map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect()).collect())
    }

    #[test]
    fn skyline_reducer_matches_fam_geometry() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let n = rng.gen_range(2..120);
            let d = rng.gen_range(1..5);
            let data = random_ds(&mut rng, n, d);
            let all: Vec<usize> = (0..n).collect();
            let kept = SkylineReducer.reduce(&data, &all).unwrap();
            assert_eq!(kept, skyline(&data));
        }
    }

    #[test]
    fn skyline_reducer_on_subsets_prunes_within_the_subset_only() {
        // (0.5, 0.5) is dominated by (0.6, 0.6), but the subset below
        // excludes the dominator, so it survives a subset reduction.
        let data = ds(vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.6, 0.6],
            vec![0.5, 0.5],
            vec![0.2, 0.9],
        ]);
        let kept = SkylineReducer.reduce(&data, &[0, 1, 3]).unwrap();
        assert_eq!(kept, vec![0, 1, 3]);
        let kept = SkylineReducer.reduce(&data, &[0, 1, 2, 3]).unwrap();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn candidate_validation() {
        let data = ds(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(SkylineReducer.reduce(&data, &[]).is_err());
        assert!(SkylineReducer.reduce(&data, &[0, 2]).is_err());
        assert!(SkylineReducer.reduce(&data, &[1, 0]).is_err(), "must be ascending");
        assert!(SkylineReducer.reduce(&data, &[0, 0]).is_err(), "must be strict");
        assert!(CoresetReducer::new(0.0).is_err());
        assert!(CoresetReducer::new(1.5).is_err());
    }

    #[test]
    fn coreset_keeps_extreme_points_and_shrinks() {
        let mut rng = StdRng::seed_from_u64(33);
        let n = 4000;
        let data = random_ds(&mut rng, n, 3);
        let sky = skyline(&data);
        let core = CoresetReducer::new(0.05).unwrap().reduce(&data, &sky).unwrap();
        assert!(!core.is_empty() && core.len() <= sky.len());
        assert!(core.iter().all(|c| sky.binary_search(c).is_ok()), "coreset ⊆ skyline");
        // Per-dimension maxima survive (axis directions are in the net).
        for j in 0..3 {
            let mut best = 0usize;
            let mut best_v = f64::NEG_INFINITY;
            for (i, p) in data.points().enumerate() {
                if p[j] > best_v {
                    best = i;
                    best_v = p[j];
                }
            }
            assert!(core.contains(&best), "axis-{j} maximum must be kept");
        }
        // Coarser eps keeps no more points than a finer one.
        let coarse = CoresetReducer::new(0.2).unwrap().reduce(&data, &sky).unwrap();
        assert!(coarse.len() <= core.len());
    }

    #[test]
    fn coreset_is_deterministic_and_order_canonical() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = random_ds(&mut rng, 500, 4);
        let sky = skyline(&data);
        let r = CoresetReducer::new(0.1).unwrap();
        let a = r.reduce(&data, &sky).unwrap();
        let b = r.reduce(&data, &sky).unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending, strict");
    }

    #[test]
    fn one_dimensional_inputs_reduce_to_the_maxima() {
        let data = ds(vec![vec![0.3], vec![0.9], vec![0.9], vec![0.1]]);
        let all: Vec<usize> = (0..4).collect();
        let sky = SkylineReducer.reduce(&data, &all).unwrap();
        assert_eq!(sky, vec![1, 2], "duplicate maxima are mutually non-dominating");
        let core = CoresetReducer::new(0.05).unwrap().reduce(&data, &sky).unwrap();
        assert_eq!(core, vec![1], "first-strict-argmax keeps the lowest id");
    }
}
