//! Property-based tests for the core regret machinery.

use fam_core::{regret, ScoreMatrix, SelectionEvaluator};
use proptest::prelude::*;

fn matrix_strategy(
    max_points: usize,
    max_users: usize,
) -> impl Strategy<Value = ScoreMatrix> {
    (2..=max_points, 1..=max_users).prop_flat_map(|(n, u)| {
        proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, n), u)
            .prop_map(|rows| ScoreMatrix::from_rows(rows, None).unwrap())
    })
}

fn weighted_matrix_strategy() -> impl Strategy<Value = ScoreMatrix> {
    (2usize..8, 2usize..8).prop_flat_map(|(n, u)| {
        (
            proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, n), u),
            proptest::collection::vec(0.01f64..1.0, u),
        )
            .prop_map(|(rows, w)| ScoreMatrix::from_rows(rows, Some(w)).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The incremental evaluator agrees with direct recomputation after an
    /// arbitrary removal sequence.
    #[test]
    fn evaluator_matches_direct(m in matrix_strategy(10, 12), order_seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(order_seed);
        let mut ev = SelectionEvaluator::new_full(&m);
        let mut remaining: Vec<usize> = (0..m.n_points()).collect();
        while remaining.len() > 1 {
            let pos = rng.gen_range(0..remaining.len());
            let victim = remaining.swap_remove(pos);
            let predicted = ev.arr_without(victim);
            ev.remove(victim);
            prop_assert!((ev.arr() - predicted).abs() < 1e-9);
            let direct = regret::arr_unchecked(&m, &ev.selection());
            prop_assert!((ev.arr() - direct).abs() < 1e-9);
        }
    }

    /// `restrict_columns` preserves regret ratios measured against the
    /// restricted universe.
    #[test]
    fn restriction_consistency(m in matrix_strategy(8, 6)) {
        let keep: Vec<usize> = (0..m.n_points()).step_by(2).collect();
        prop_assume!(!keep.is_empty());
        // Skip rows that become all-zero under restriction.
        let ok = (0..m.n_samples()).all(|u| keep.iter().any(|&p| m.score(u, p) > 0.0));
        prop_assume!(ok);
        let r = m.restrict_columns(&keep).unwrap();
        // arr over all restricted columns is 0 by definition.
        let all: Vec<usize> = (0..r.n_points()).collect();
        prop_assert!(regret::arr_unchecked(&r, &all).abs() < 1e-12);
        // Per-sample best value matches the max over kept columns.
        for u in 0..r.n_samples() {
            let manual = keep.iter().map(|&p| m.score(u, p)).fold(0.0f64, f64::max);
            prop_assert!((r.best_value(u) - manual).abs() < 1e-12);
        }
    }

    /// Weighted arr is a convex combination of per-user regret ratios.
    #[test]
    fn weighted_arr_is_convex_combination(m in weighted_matrix_strategy()) {
        let sel = vec![0];
        let rrs = regret::rr_all(&m, &sel);
        let arr = regret::arr(&m, &sel).unwrap();
        let lo = rrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rrs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(arr >= lo - 1e-12 && arr <= hi + 1e-12);
        // Weights sum to 1 after normalization.
        let total: f64 = m.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Adding any point to a selection never increases arr (Lemma 1),
    /// checked via evaluator addition deltas.
    #[test]
    fn addition_deltas_are_non_positive(m in matrix_strategy(9, 7)) {
        let mut ev = SelectionEvaluator::new_with(&m, &[0]);
        for p in 1..m.n_points() {
            prop_assert!(ev.addition_delta(p) <= 1e-12);
        }
        // And applying them matches the predicted value.
        for p in 1..m.n_points().min(4) {
            let predicted = ev.arr() + ev.addition_delta(p);
            ev.add(p);
            prop_assert!((ev.arr() - predicted).abs() < 1e-9);
        }
    }

    /// Best-in-D bookkeeping: the stored best value is genuinely maximal
    /// and positive.
    #[test]
    fn best_values_are_maximal(m in matrix_strategy(10, 10)) {
        for u in 0..m.n_samples() {
            let row = m.row(u);
            let manual = row.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!((m.best_value(u) - manual).abs() < 1e-15);
            prop_assert!(m.best_value(u) > 0.0);
            prop_assert!((row[m.best_index(u)] - manual).abs() < 1e-15);
        }
    }
}
