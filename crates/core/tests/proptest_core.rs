//! Property-based tests for the core regret machinery.

use fam_core::{regret, ScoreMatrix, SelectionEvaluator};
use proptest::prelude::*;

fn matrix_strategy(max_points: usize, max_users: usize) -> impl Strategy<Value = ScoreMatrix> {
    (2..=max_points, 1..=max_users).prop_flat_map(|(n, u)| {
        proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, n), u)
            .prop_map(|rows| ScoreMatrix::from_rows(rows, None).unwrap())
    })
}

fn weighted_matrix_strategy() -> impl Strategy<Value = ScoreMatrix> {
    (2usize..8, 2usize..8).prop_flat_map(|(n, u)| {
        (
            proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, n), u),
            proptest::collection::vec(0.01f64..1.0, u),
        )
            .prop_map(|(rows, w)| ScoreMatrix::from_rows(rows, Some(w)).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The incremental evaluator agrees with direct recomputation after an
    /// arbitrary removal sequence.
    #[test]
    fn evaluator_matches_direct(m in matrix_strategy(10, 12), order_seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(order_seed);
        let mut ev = SelectionEvaluator::new_full(&m);
        let mut remaining: Vec<usize> = (0..m.n_points()).collect();
        while remaining.len() > 1 {
            let pos = rng.gen_range(0..remaining.len());
            let victim = remaining.swap_remove(pos);
            let predicted = ev.arr_without(victim);
            ev.remove(victim);
            prop_assert!((ev.arr() - predicted).abs() < 1e-9);
            let direct = regret::arr_unchecked(&m, &ev.selection());
            prop_assert!((ev.arr() - direct).abs() < 1e-9);
        }
    }

    /// `restrict_columns` preserves regret ratios measured against the
    /// restricted universe.
    #[test]
    fn restriction_consistency(m in matrix_strategy(8, 6)) {
        let keep: Vec<usize> = (0..m.n_points()).step_by(2).collect();
        prop_assume!(!keep.is_empty());
        // Skip rows that become all-zero under restriction.
        let ok = (0..m.n_samples()).all(|u| keep.iter().any(|&p| m.score(u, p) > 0.0));
        prop_assume!(ok);
        let r = m.restrict_columns(&keep).unwrap();
        // arr over all restricted columns is 0 by definition.
        let all: Vec<usize> = (0..r.n_points()).collect();
        prop_assert!(regret::arr_unchecked(&r, &all).abs() < 1e-12);
        // Per-sample best value matches the max over kept columns.
        for u in 0..r.n_samples() {
            let manual = keep.iter().map(|&p| m.score(u, p)).fold(0.0f64, f64::max);
            prop_assert!((r.best_value(u) - manual).abs() < 1e-12);
        }
    }

    /// Weighted arr is a convex combination of per-user regret ratios.
    #[test]
    fn weighted_arr_is_convex_combination(m in weighted_matrix_strategy()) {
        let sel = vec![0];
        let rrs = regret::rr_all(&m, &sel);
        let arr = regret::arr(&m, &sel).unwrap();
        let lo = rrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rrs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(arr >= lo - 1e-12 && arr <= hi + 1e-12);
        // Weights sum to 1 after normalization.
        let total: f64 = m.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Adding any point to a selection never increases arr (Lemma 1),
    /// checked via evaluator addition deltas.
    #[test]
    fn addition_deltas_are_non_positive(m in matrix_strategy(9, 7)) {
        let mut ev = SelectionEvaluator::new_with(&m, &[0]);
        for p in 1..m.n_points() {
            prop_assert!(ev.addition_delta(p) <= 1e-12);
        }
        // And applying them matches the predicted value.
        for p in 1..m.n_points().min(4) {
            let predicted = ev.arr() + ev.addition_delta(p);
            ev.add(p);
            prop_assert!((ev.arr() - predicted).abs() < 1e-9);
        }
    }

    /// Best-in-D bookkeeping: the stored best value is genuinely maximal
    /// and positive.
    #[test]
    fn best_values_are_maximal(m in matrix_strategy(10, 10)) {
        for u in 0..m.n_samples() {
            let row = m.row(u);
            let manual = row.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!((m.best_value(u) - manual).abs() < 1e-15);
            prop_assert!(m.best_value(u) > 0.0);
            prop_assert!((row[m.best_index(u)] - manual).abs() < 1e-15);
        }
    }
}

// Properties of the dual-layout score substrate (point-major mirror).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The point-major mirror agrees with `score(u, p)` entry for entry,
    /// and `row_slice` exposes exactly the sample-major rows.
    #[test]
    fn column_mirror_matches_scores(m in matrix_strategy(12, 12)) {
        use fam_core::ScoreSource;
        prop_assert!(m.has_column_mirror());
        for p in 0..m.n_points() {
            let col = m.column(p).expect("mirror present");
            prop_assert_eq!(col.len(), m.n_samples());
            for (u, &v) in col.iter().enumerate() {
                prop_assert_eq!(v.to_bits(), m.score(u, p).to_bits());
            }
        }
        for u in 0..m.n_samples() {
            let row = m.row_slice(u).expect("matrix is sample-major");
            for (p, &v) in row.iter().enumerate() {
                prop_assert_eq!(v.to_bits(), m.score(u, p).to_bits());
            }
        }
    }

    /// Dropping the mirror changes layout only: every score, best value,
    /// and evaluator result is unchanged, and `column` reports `None`.
    #[test]
    fn mirrorless_matrix_is_equivalent(m in matrix_strategy(10, 10)) {
        use fam_core::ScoreSource;
        let bare = m.clone_without_mirror();
        prop_assert!(!bare.has_column_mirror());
        prop_assert!(bare.column(0).is_none());
        prop_assert!(ScoreSource::column_slice(&bare, 0).is_none());
        for u in 0..m.n_samples() {
            prop_assert_eq!(bare.best_value(u).to_bits(), m.best_value(u).to_bits());
            for p in 0..m.n_points() {
                prop_assert_eq!(bare.score(u, p).to_bits(), m.score(u, p).to_bits());
            }
        }
        let mut with = SelectionEvaluator::new_full(&m);
        let mut without = SelectionEvaluator::new_full(&bare);
        prop_assert_eq!(with.arr().to_bits(), without.arr().to_bits());
        for p in (0..m.n_points() - 1).rev() {
            prop_assert_eq!(
                with.removal_delta(p).to_bits(),
                without.removal_delta(p).to_bits()
            );
            with.remove(p);
            without.remove(p);
            prop_assert_eq!(with.arr().to_bits(), without.arr().to_bits());
        }
        // Additions exercise the columnar fast path against the probe path.
        for p in 1..m.n_points() - 1 {
            prop_assert_eq!(
                with.addition_delta(p).to_bits(),
                without.addition_delta(p).to_bits()
            );
            with.add(p);
            without.add(p);
            prop_assert_eq!(with.arr().to_bits(), without.arr().to_bits());
        }
    }

    /// A rebuilt mirror is identical to the one made at construction.
    #[test]
    fn rebuilt_mirror_roundtrips(m in matrix_strategy(9, 9)) {
        let mut bare = m.clone_without_mirror();
        bare.build_column_mirror();
        for p in 0..m.n_points() {
            prop_assert_eq!(m.column(p).unwrap(), bare.column(p).unwrap());
        }
    }
}
