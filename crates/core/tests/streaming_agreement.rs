//! Agreement between the streamed (matrix-free) evaluator and the batch
//! `ScoreMatrix` path.
//!
//! `streamed_rr` draws utility functions from the distribution in the
//! same order `ScoreMatrix::from_distribution` does, so running both from
//! the same RNG seed scores the *same* sampled users — the per-sample
//! regret ratios must then agree exactly (max/ratio arithmetic is
//! identical on identical scores), and the aggregated report must agree
//! up to summation order.

use std::sync::Arc;

use fam_core::prelude::*;
use fam_core::streaming::{streamed_report, streamed_rr};
use fam_core::{DiscreteDistribution, TableUtility};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    Dataset::from_rows(vec![
        vec![0.9, 0.1, 0.3],
        vec![0.5, 0.5, 0.5],
        vec![0.1, 0.9, 0.2],
        vec![0.7, 0.4, 0.8],
        vec![0.2, 0.3, 0.9],
    ])
    .unwrap()
}

#[test]
fn same_seed_gives_bitwise_equal_regret_ratios() {
    let ds = dataset();
    let dist = UniformLinear::new(3).unwrap();
    for sel in [vec![0], vec![1, 3], vec![0, 2, 4]] {
        let mut rng = StdRng::seed_from_u64(99);
        let m = ScoreMatrix::from_distribution(&ds, &dist, 500, &mut rng).unwrap();
        let batch: Vec<f64> = regret::rr_all(&m, &sel);
        let mut rng = StdRng::seed_from_u64(99);
        let streamed = streamed_rr(&ds, &sel, &dist, 500, &mut rng).unwrap();
        assert_eq!(batch.len(), streamed.len());
        for (u, (b, s)) in batch.iter().zip(&streamed).enumerate() {
            assert_eq!(b.to_bits(), s.to_bits(), "sample {u} diverged for selection {sel:?}");
        }
    }
}

#[test]
fn streamed_report_matches_batch_report() {
    let ds = dataset();
    let dist = SimplexLinear::new(3).unwrap();
    let sel = vec![1, 4];
    let n = 2_000;
    let mut rng = StdRng::seed_from_u64(7);
    let m = ScoreMatrix::from_distribution(&ds, &dist, n, &mut rng).unwrap();
    let batch = regret::report(&m, &sel).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let (rep, pct) = streamed_report(&ds, &sel, &dist, n, &[0.0, 50.0, 100.0], &mut rng).unwrap();
    // Same samples, different accumulation order: tight tolerance, not bits.
    assert!((rep.arr - batch.arr).abs() < 1e-9, "{} vs {}", rep.arr, batch.arr);
    assert!((rep.vrr - batch.vrr).abs() < 1e-9);
    assert!((rep.std_dev - batch.std_dev).abs() < 1e-9);
    assert_eq!(rep.mrr.to_bits(), batch.mrr.to_bits(), "max is order-independent");
    assert!(pct[0] <= pct[1] && pct[1] <= pct[2]);
    assert_eq!(pct[2].to_bits(), rep.mrr.to_bits(), "p100 is the sampled mrr");
}

#[test]
fn single_atom_distribution_is_deterministic() {
    // A one-function population: streaming and the exact discrete matrix
    // must agree sample for sample, regardless of RNG state.
    let ds = dataset();
    let f: Arc<dyn UtilityFunction> =
        Arc::new(TableUtility::new(vec![0.2, 0.9, 0.4, 0.5, 0.1]).unwrap());
    let dist = DiscreteDistribution::new(vec![(f, 1.0)], 5).unwrap();
    let m = ScoreMatrix::from_discrete_exact(&ds, &dist).unwrap();
    let sel = vec![0, 3];
    let exact = regret::arr(&m, &sel).unwrap();
    let mut rng = StdRng::seed_from_u64(1234);
    let rrs = streamed_rr(&ds, &sel, &dist, 50, &mut rng).unwrap();
    assert_eq!(rrs.len(), 50);
    for r in &rrs {
        assert_eq!(r.to_bits(), exact.to_bits(), "every draw is the same user");
    }
}

#[test]
fn full_and_empty_behaviour() {
    let ds = dataset();
    let dist = UniformLinear::new(3).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    // The full database has zero regret for every user.
    let rrs = streamed_rr(&ds, &[0, 1, 2, 3, 4], &dist, 300, &mut rng).unwrap();
    assert!(rrs.iter().all(|r| r.abs() < 1e-12));
    // Invalid inputs surface as errors, same as the batch evaluator.
    assert!(streamed_rr(&ds, &[], &dist, 10, &mut rng).is_err());
    assert!(streamed_rr(&ds, &[7], &dist, 10, &mut rng).is_err());
    assert!(streamed_rr(&ds, &[0, 0], &dist, 10, &mut rng).is_err());
    assert!(streamed_rr(&ds, &[0], &dist, 0, &mut rng).is_err());
    assert!(streamed_report(&ds, &[], &dist, 10, &[50.0], &mut rng).is_err());
}
