//! Behavior of the persistent deterministic worker pool.
//!
//! These tests pin the four properties the pool owes the rest of the
//! workspace: bit-identical outputs for any thread count, worker reuse
//! across sequential dispatches (no respawning), survival of panicking
//! tasks (the next job runs clean), and recovery from an injected fault
//! at the `par.dispatch` failpoint.
//!
//! All of them toggle the process-global thread override, so every test
//! serializes on one lock — the harness would otherwise interleave the
//! toggles across its own worker threads.
#![cfg(feature = "parallel")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

use fam_core::failpoints::{self, FailAction};
use fam_core::par;

fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A panicking test (the panic-survival and chaos checks panic on
    // purpose) poisons the lock; the global state it guards is two
    // atomics, valid in every interleaving.
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores thread auto-detection when dropped, panics included.
struct ThreadGuard;

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        par::set_max_threads(None);
        par::force_serial(false);
    }
}

fn with_threads(t: usize) -> ThreadGuard {
    par::set_max_threads(Some(t));
    ThreadGuard
}

/// A deterministic workload touching every pool-backed helper shape:
/// per-item fill, fixed-chunk ordered sum, and an argmax reduction.
/// Returns raw bits so comparisons are exact, not epsilon.
fn fingerprint(n: usize) -> Vec<u64> {
    let mut out = vec![0.0f64; n];
    par::fill_adaptive(&mut out, 64, |i| ((i as f64) + 0.5).sqrt().sin());
    let scores = out.clone();
    let sum = par::sum_chunked(n, |r| r.map(|i| scores[i] * 1.25).sum());
    let best = par::arg_reduce(n, 64, |i| Some(scores[i]), |cand, inc| cand > inc);
    let mut bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
    bits.push(sum.to_bits());
    let (v, i) = best.expect("non-empty reduction");
    bits.push(v.to_bits());
    bits.push(i as u64);
    bits
}

#[test]
fn outputs_bit_identical_across_thread_counts() {
    let _x = exclusive();
    let n = 20_000;
    let serial = {
        let _g = ThreadGuard;
        par::force_serial(true);
        fingerprint(n)
    };
    for t in [2, 4] {
        let _g = with_threads(t);
        assert_eq!(fingerprint(n), serial, "threads={t} diverged from serial");
    }
}

#[test]
fn workers_reused_across_sequential_dispatches() {
    let _x = exclusive();
    let _g = with_threads(2);
    let mut out = vec![0.0f64; 4096];
    // First dispatch spawns the (lazy) workers.
    par::fill_adaptive(&mut out, 64, |i| i as f64);
    let before = par::pool_stats();
    assert!(before.workers_spawned >= 1, "first dispatch must have spawned a worker");
    for round in 0..5 {
        par::fill_adaptive(&mut out, 64, |i| (i + round) as f64);
    }
    let after = par::pool_stats();
    assert!(
        after.jobs_dispatched >= before.jobs_dispatched + 5,
        "each call must go through the pool: {before:?} -> {after:?}"
    );
    assert_eq!(
        after.workers_spawned, before.workers_spawned,
        "sequential dispatches must reuse parked workers, not respawn"
    );
}

#[test]
fn pool_survives_a_panicking_task() {
    let _x = exclusive();
    let _g = with_threads(4);
    let n = 4096;
    let mut out = vec![0.0f64; n];
    let err = catch_unwind(AssertUnwindSafe(|| {
        par::fill_adaptive(&mut out, 64, |i| {
            if i == 1234 {
                panic!("injected task panic");
            }
            i as f64
        });
    }))
    .expect_err("a task panic must propagate to the dispatching thread");
    assert_eq!(err.downcast_ref::<&str>(), Some(&"injected task panic"));
    // The pool is not poisoned: the next job completes and is correct.
    par::fill_adaptive(&mut out, 64, |i| (i as f64) + 1.0);
    assert!(out.iter().enumerate().all(|(i, &v)| v == (i as f64) + 1.0));
}

#[test]
fn dispatch_failpoint_faults_then_pool_recovers() {
    let _x = exclusive();
    let _g = with_threads(2);
    let before = failpoints::triggered("par.dispatch");
    {
        let _fp = failpoints::arm_times("par.dispatch", FailAction::Error, 1);
        let err = catch_unwind(AssertUnwindSafe(|| {
            par::map_adaptive(4096, 64, |r| r.len());
        }));
        assert!(err.is_err(), "an injected dispatch fault must surface as a panic");
    }
    assert_eq!(failpoints::triggered("par.dispatch"), before + 1);
    // arm_times(.., 1) auto-disarmed: the very next dispatch succeeds.
    let got = par::map_adaptive(4096, 64, |r| r.len());
    assert_eq!(got.iter().sum::<usize>(), 4096);
}
