//! The `FAM_MAX_MATRIX_BYTES` environment path of the matrix footprint
//! budget, isolated in a single-test binary: mutating the process
//! environment while other test threads read it through
//! `check_matrix_budget` (every `from_distribution` does) is a data
//! race, so this file must hold exactly one `#[test]`.

use fam_core::sampling::MAX_MATRIX_BYTES_ENV;
use fam_core::{check_matrix_budget, UniformLinear};

#[test]
fn env_budget_gates_matrix_builds() {
    // Unset: only address-space overflow is rejected.
    std::env::remove_var(MAX_MATRIX_BYTES_ENV);
    check_matrix_budget(10_000, 10_000).unwrap();
    assert!(check_matrix_budget(usize::MAX, 3).is_err());

    // A 1 MiB budget rejects anything larger, end to end through the
    // sampling constructor.
    std::env::set_var(MAX_MATRIX_BYTES_ENV, "1048576");
    assert!(check_matrix_budget(10_000, 10_000).is_err());
    check_matrix_budget(100, 100).unwrap();
    let ds = fam_core::Dataset::from_rows(vec![vec![0.5, 1.0]; 200]).unwrap();
    let dist = UniformLinear::new(2).unwrap();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let err = fam_core::ScoreMatrix::from_distribution(&ds, &dist, 100_000, &mut rng).unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
    // Small builds still pass under the budget.
    fam_core::ScoreMatrix::from_distribution(&ds, &dist, 50, &mut rng).unwrap();

    // Unparsable values mean no budget.
    std::env::set_var(MAX_MATRIX_BYTES_ENV, "not-a-number");
    check_matrix_budget(10_000, 10_000).unwrap();
    std::env::remove_var(MAX_MATRIX_BYTES_ENV);
}
