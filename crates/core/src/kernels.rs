//! Cache-blocked, fixed-width-lane numeric kernels — the shared hot-path
//! substrate behind [`crate::scores`], [`crate::evaluator`],
//! [`crate::linear_scores`], and the greedy solvers.
//!
//! Every dense pass in the workspace is one of four stream shapes:
//!
//! * **dot products** over a point's coordinates ([`dot`],
//!   [`linear_score_row`], [`linear_best`]) — the `O(nN)` scoring pass;
//! * **row argmax** ([`row_best`], [`validate_row_best`]) — the per-sample
//!   best-point pass, fused with validation;
//! * **ordered folds** ([`lane_sum`], [`lane_max`]) — the evaluator's
//!   `arr` refold and addition/candidate sweeps;
//! * **top-two scans** ([`top_two_gather`], [`top_two_dense`]) — the
//!   evaluator's removal rescans;
//!
//! plus the cache-blocked transposes ([`transpose_band`],
//! [`transpose_into`], [`transpose`]) that maintain the point-major
//! mirror. Centralizing them here keeps the floating-point *shape* of
//! each pass single-sourced, which is what the bit-identity contract
//! (serial × parallel × mirrored/mirrorless all bit-equal, see
//! [`crate::par`]) actually pins.
//!
//! # Determinism model
//!
//! Results are deterministic **within one compiled binary**: every kernel
//! fixes its lane decomposition and combine order, independent of thread
//! count or layout. Results may differ by ~1 ulp *across* binaries
//! compiled for different targets, because [`fmadd`] lowers to a fused
//! multiply-add only where the target has one (see its docs) — the
//! workspace never compares floats across builds, only within a run.
//!
//! The full memory-layout and performance model is documented in
//! `docs/PERFORMANCE.md` at the repository root.

/// Accumulator lanes per kernel. Four independent 64-bit lanes fill one
/// AVX2 vector and give superscalar FMA units enough independent chains
/// on any x86-64/aarch64 core; changing it changes the floating-point
/// grouping of every lane-decomposed reduction (see [`lane_sum`]).
pub const LANES: usize = 4;

/// Element tile processed per blocked-kernel step — small enough that a
/// scored tile is still L1-resident when the fused validate+best pass
/// re-reads it, and the band granularity of the blocked transposes
/// (64 × 64 doubles = two 32 KiB half-tiles).
pub const TILE: usize = 64;

/// `a * b + acc` with a single rounding where the compilation target has
/// a hardware fused multiply-add, and the plain two-rounding form where
/// it does not (on such targets `f64::mul_add` is a *libm call* — an
/// order of magnitude slower than the thing it replaces).
///
/// Both forms are deterministic; they just differ from each other by at
/// most one rounding. Every bit-identity pin in the workspace compares
/// values produced by the same binary, so the `cfg` never makes a test
/// outcome target-dependent.
#[inline(always)]
pub fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    #[cfg(any(target_feature = "fma", target_arch = "aarch64"))]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(any(target_feature = "fma", target_arch = "aarch64")))]
    {
        acc + a * b
    }
}

/// The canonical dot product: a serial [`fmadd`] chain over the shorter
/// of the two slices.
///
/// Everything that scores a linear utility goes through this exact
/// arithmetic shape — [`crate::LinearUtility`], the fused matrix scoring
/// pass ([`linear_score_row`]), and the compact
/// [`crate::LinearScores`] substrate — so a score computed on demand is
/// bit-identical to the same score materialized in a matrix.
///
/// ```
/// let w = [0.25, 0.75];
/// let p = [1.0, 1.0];
/// assert_eq!(fam_core::kernels::dot(&w, &p), 1.0);
/// ```
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc = fmadd(*x, *y, acc);
    }
    acc
}

/// Why a row failed validation: the first offending element in element
/// order, classified. Returned by [`validate_row_best`]; callers add
/// their own row index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowIssue {
    /// `row[col]` is NaN or infinite.
    NonFinite {
        /// Element offset within the row.
        col: usize,
    },
    /// `row[col]` is finite but negative.
    Negative {
        /// Element offset within the row.
        col: usize,
    },
}

/// One tile's maximum and validity. The max is computed over `LANES`
/// independent `f64::max` lanes (exact — `max` performs no arithmetic),
/// the validity flag is a branchless conjunction of
/// `v >= 0.0 && v <= f64::MAX`, which rejects exactly NaN, `±inf`, and
/// negatives. NaN never poisons the max (`f64::max` ignores it); a tile
/// containing one always reports `ok == false`, so the max is only
/// consumed for valid tiles.
// Not `RangeInclusive::contains`: the mask is a deliberate non-short-
// circuit `&` conjunction so the lane loop stays branch-free.
#[allow(clippy::manual_range_contains)]
#[inline]
fn tile_max_ok(tile: &[f64]) -> (f64, bool) {
    let mut lanes = [f64::NEG_INFINITY; LANES];
    let mut ok = true;
    let mut i = 0;
    while i + LANES <= tile.len() {
        for (l, lane) in lanes.iter_mut().enumerate() {
            let v = tile[i + l];
            ok &= (v >= 0.0) & (v <= f64::MAX);
            *lane = lane.max(v);
        }
        i += LANES;
    }
    while i < tile.len() {
        let v = tile[i];
        ok &= (v >= 0.0) & (v <= f64::MAX);
        lanes[0] = lanes[0].max(v);
        i += 1;
    }
    ((lanes[0].max(lanes[1])).max(lanes[2].max(lanes[3])), ok)
}

/// Position of the first element equal to `target` in `tile` — exact
/// comparison, used to recover the first-argmax position from a lane max.
#[inline]
fn first_position(tile: &[f64], target: f64) -> usize {
    tile.iter().position(|&v| v == target).expect("lane max is an element of the tile")
}

/// First strict argmax of a non-empty row: the index of the **first**
/// occurrence of the row's maximum, exactly what a serial
/// `if v > best { ... }` scan keeps.
///
/// The row must contain no NaN (validated rows always qualify); `±0.0`
/// compare equal, so a `-0.0` first occurrence wins over a later `+0.0`
/// just as in the serial scan.
///
/// ```
/// assert_eq!(fam_core::kernels::row_best(&[0.3, 0.9, 0.9, 0.1]), (1, 0.9));
/// ```
///
/// # Panics
///
/// Panics on an empty row.
#[inline]
pub fn row_best(row: &[f64]) -> (u32, f64) {
    assert!(!row.is_empty(), "row_best on an empty row");
    let (mut bi, mut bv) = (0u32, f64::NEG_INFINITY);
    let mut t0 = 0;
    while t0 < row.len() {
        let t1 = (t0 + TILE).min(row.len());
        let tile = &row[t0..t1];
        let (tmax, _) = tile_max_ok(tile);
        if tmax > bv {
            bi = (t0 + first_position(tile, tmax)) as u32;
            bv = tmax;
        }
        t0 = t1;
    }
    (bi, bv)
}

/// Fused validate + first-strict-argmax over one score row — the
/// per-sample half of the paper's preprocessing, in a single pass.
///
/// Streams the row once in [`TILE`]-element tiles; each tile folds a
/// branchless validity mask and a lane max, and only a failing tile pays
/// for the scalar rescan that locates and classifies the first offending
/// element. The returned argmax is identical to the serial
/// first-strict-argmax scan ([`row_best`]); note that a best value of
/// `0.0` is *valid* here — degenerate-row rejection is the caller's
/// (row-index-aware) concern.
///
/// # Errors
///
/// Returns the first offending element in element order: [`RowIssue::NonFinite`]
/// for NaN/`±inf`, [`RowIssue::Negative`] for finite negatives.
pub fn validate_row_best(row: &[f64]) -> Result<(u32, f64), RowIssue> {
    debug_assert!(!row.is_empty(), "validate_row_best on an empty row");
    let (mut bi, mut bv) = (0u32, f64::NEG_INFINITY);
    let mut t0 = 0;
    while t0 < row.len() {
        let t1 = (t0 + TILE).min(row.len());
        let tile = &row[t0..t1];
        let (tmax, ok) = tile_max_ok(tile);
        if !ok {
            // Earlier tiles were clean, so the row's first offending
            // element lives in this tile.
            for (j, &v) in tile.iter().enumerate() {
                if !(0.0..=f64::MAX).contains(&v) {
                    let col = t0 + j;
                    return Err(if v.is_finite() {
                        RowIssue::Negative { col }
                    } else {
                        RowIssue::NonFinite { col }
                    });
                }
            }
            unreachable!("tile failed the mask but every element passed it");
        }
        if tmax > bv {
            bi = (t0 + first_position(tile, tmax)) as u32;
            bv = tmax;
        }
        t0 = t1;
    }
    Ok((bi, bv))
}

/// Fused score + validate + best over one linear-utility row: writes
/// `out[p] = dot(weights, point_p)` for every point and returns
/// `(best_index, best_value, all_valid)` from the same pass.
///
/// `points` is the dataset's flat row-major coordinate buffer (point `p`
/// occupies `points[p * dim .. (p + 1) * dim]`). Points are scored
/// eight (`SCORE_UNROLL`) at a time with one independent accumulator chain per
/// point — each chain performs *exactly* the [`fmadd`] sequence of
/// [`dot`], so every written score is bit-identical to an on-demand
/// `dot(weights, point)` — then each finished [`TILE`] is folded for
/// validity and max while still L1-resident. Dimensions up to 8 are
/// compile-time specialized so the chains fully unroll with the weights
/// in registers.
///
/// When `all_valid` is `false`, call [`validate_row_best`] on the written
/// row to locate and classify the first offending element; the returned
/// best is meaningful only for valid rows.
///
/// # Panics
///
/// Panics if `weights.len() != dim` or `points.len() != out.len() * dim`.
pub fn linear_score_row(
    weights: &[f64],
    points: &[f64],
    dim: usize,
    out: &mut [f64],
) -> (u32, f64, bool) {
    assert_eq!(points.len(), out.len() * dim, "flat coordinate buffer does not match the row");
    assert_eq!(weights.len(), dim, "weight vector does not match the coordinate dimension");
    match dim {
        1 => score_row::<1>(weights, points, out),
        2 => score_row::<2>(weights, points, out),
        3 => score_row::<3>(weights, points, out),
        4 => score_row::<4>(weights, points, out),
        5 => score_row::<5>(weights, points, out),
        6 => score_row::<6>(weights, points, out),
        7 => score_row::<7>(weights, points, out),
        8 => score_row::<8>(weights, points, out),
        _ => score_row_dyn(weights, points, dim, out, fill_tile_dyn),
    }
}

/// Independent accumulator chains kept in flight by the scoring pass.
/// Wider than [`LANES`]: the dot products are latency-bound fmadd chains,
/// and more chains hide more latency. Safe for bit-identity because each
/// point's chain is independent — the chain *count* never changes any
/// chain's op sequence.
const SCORE_UNROLL: usize = 8;

/// [`linear_score_row`] with the dimension as a compile-time constant, so
/// the per-point fmadd chain fully unrolls, the weight vector stays in
/// registers, and the coordinate indexing needs one bounds check per
/// [`SCORE_UNROLL`] block.
#[inline(always)]
fn score_row<const D: usize>(weights: &[f64], points: &[f64], out: &mut [f64]) -> (u32, f64, bool) {
    score_row_dyn(weights, points, D, out, fill_tile::<D>)
}

/// The shared tile skeleton: fill each [`TILE`] of scores with `fill`,
/// then fold validity and the first-strict-argmax while the tile is still
/// L1-resident.
#[inline(always)]
fn score_row_dyn(
    weights: &[f64],
    points: &[f64],
    dim: usize,
    out: &mut [f64],
    fill: impl Fn(&[f64], &[f64], &mut [f64]),
) -> (u32, f64, bool) {
    let n = out.len();
    let (mut bi, mut bv, mut ok) = (0u32, f64::NEG_INFINITY, true);
    let mut t0 = 0;
    while t0 < n {
        let t1 = (t0 + TILE).min(n);
        fill(weights, &points[t0 * dim..t1 * dim], &mut out[t0..t1]);
        let tile = &out[t0..t1];
        let (tmax, tok) = tile_max_ok(tile);
        ok &= tok;
        if tmax > bv {
            bi = (t0 + first_position(tile, tmax)) as u32;
            bv = tmax;
        }
        t0 = t1;
    }
    (bi, bv, ok)
}

/// Scores one span of points ([`SCORE_UNROLL`] chains in flight), `D`
/// known at compile time. Every chain performs exactly [`dot`]'s fmadd
/// sequence over coordinates `0..D`, so each written score is bit-equal
/// to `dot(weights, point)`.
#[inline(always)]
fn fill_tile<const D: usize>(weights: &[f64], pts: &[f64], out: &mut [f64]) {
    let w: &[f64; D] = weights.try_into().expect("dispatch guarantees weights.len() == D");
    let mut p = 0;
    let n = out.len();
    while p + SCORE_UNROLL <= n {
        let block = &pts[p * D..(p + SCORE_UNROLL) * D];
        let mut acc = [0.0f64; SCORE_UNROLL];
        for i in 0..D {
            for (l, lane) in acc.iter_mut().enumerate() {
                *lane = fmadd(w[i], block[l * D + i], *lane);
            }
        }
        out[p..p + SCORE_UNROLL].copy_from_slice(&acc);
        p += SCORE_UNROLL;
    }
    while p < n {
        out[p] = dot(w, &pts[p * D..(p + 1) * D]);
        p += 1;
    }
}

/// Runtime-dimension fallback of [`fill_tile`] for `dim > 8`: same chain
/// shape, [`LANES`] points in flight.
fn fill_tile_dyn(weights: &[f64], pts: &[f64], out: &mut [f64]) {
    let dim = weights.len();
    let mut p = 0;
    let n = out.len();
    while p + LANES <= n {
        let base = p * dim;
        let mut acc = [0.0f64; LANES];
        for (i, &w) in weights.iter().enumerate() {
            for (l, lane) in acc.iter_mut().enumerate() {
                *lane = fmadd(w, pts[base + l * dim + i], *lane);
            }
        }
        out[p..p + LANES].copy_from_slice(&acc);
        p += LANES;
    }
    while p < n {
        out[p] = dot(weights, &pts[p * dim..(p + 1) * dim]);
        p += 1;
    }
}

/// First-strict-argmax of `dot(weights, point_p)` over all points of a
/// flat coordinate buffer, **without** materializing the scores — the
/// kernel behind [`crate::LinearScores`]' `O(d(N + n))`-space best-point
/// pass. Scores stream through a [`TILE`]-sized stack buffer; each score
/// is bit-identical to [`dot`] on the same pair, so the result matches
/// [`linear_score_row`]'s best exactly.
///
/// # Panics
///
/// Panics if `dim == 0`, `weights.len() != dim`, or `points.len()` is not
/// a multiple of `dim`.
pub fn linear_best(weights: &[f64], points: &[f64], dim: usize) -> (u32, f64) {
    assert!(dim > 0, "points must have at least one coordinate");
    assert_eq!(points.len() % dim, 0, "flat coordinate buffer must be a whole number of points");
    let n = points.len() / dim;
    let mut buf = [0.0f64; TILE];
    let (mut bi, mut bv) = (0u32, f64::NEG_INFINITY);
    let mut t0 = 0;
    while t0 < n {
        let t1 = (t0 + TILE).min(n);
        let tile = &mut buf[..t1 - t0];
        let (tbi, tbv, _) = linear_score_row(weights, &points[t0 * dim..t1 * dim], dim, tile);
        if tbv > bv {
            bi = t0 as u32 + tbi;
            bv = tbv;
        }
        t0 = t1;
    }
    (bi, bv)
}

/// Sentinel point index meaning "no point" in the top-two kernels.
pub const NO_POINT: u32 = u32::MAX;

/// Best and runner-up scores of one sample row over an explicit member
/// list (a *gather*: `members` need not be sorted — the scan order is the
/// list order), skipping `exclude` (pass [`NO_POINT`] to skip nothing).
/// Returned values are `0.0` when the corresponding index is
/// [`NO_POINT`].
///
/// On bit-equal ties the recorded *indices* follow the scan order, so
/// they may differ from [`top_two_dense`]'s; the returned *values* are
/// order statistics of the same multiset and always agree bit-for-bit.
#[inline]
pub fn top_two_gather(row: &[f64], members: &[u32], exclude: u32) -> (u32, f64, u32, f64) {
    let (mut b1, mut v1, mut b2, mut v2) = (NO_POINT, 0.0f64, NO_POINT, 0.0f64);
    for &p in members {
        if p == exclude {
            continue;
        }
        let s = row[p as usize];
        if b1 == NO_POINT || s > v1 {
            b2 = b1;
            v2 = v1;
            b1 = p;
            v1 = s;
        } else if b2 == NO_POINT || s > v2 {
            b2 = p;
            v2 = s;
        }
    }
    (b1, if b1 == NO_POINT { 0.0 } else { v1 }, b2, if b2 == NO_POINT { 0.0 } else { v2 })
}

/// [`top_two_gather`] for *dense* selections: streams the whole row in
/// index order and keeps the members flagged in `in_sel`. When the
/// selection covers a large fraction of the points this trades the
/// member-list gather (random access within each row once removals have
/// scrambled the list) for a sequential prefetchable read — the
/// GREEDY-SHRINK removal-rescan shape.
///
/// Values are bit-identical to the gather variant on the same selection;
/// tie indices follow index order (see [`top_two_gather`]).
///
/// # Panics
///
/// Panics if `row` is shorter than `in_sel`.
#[inline]
pub fn top_two_dense(row: &[f64], in_sel: &[bool], exclude: u32) -> (u32, f64, u32, f64) {
    let (mut b1, mut v1, mut b2, mut v2) = (NO_POINT, 0.0f64, NO_POINT, 0.0f64);
    for (p, &selected) in in_sel.iter().enumerate() {
        if !selected || p as u32 == exclude {
            continue;
        }
        let s = row[p];
        if b1 == NO_POINT || s > v1 {
            b2 = b1;
            v2 = v1;
            b1 = p as u32;
            v1 = s;
        } else if b2 == NO_POINT || s > v2 {
            b2 = p as u32;
            v2 = s;
        }
    }
    (b1, if b1 == NO_POINT { 0.0 } else { v1 }, b2, if b2 == NO_POINT { 0.0 } else { v2 })
}

/// Sum of `f(0) + f(1) + … + f(n-1)` over [`LANES`] independent
/// accumulators: lane `l` owns indices `≡ l (mod LANES)` (the tail
/// spills into the low lanes) and the lanes combine as
/// `(a0 + a1) + (a2 + a3)`.
///
/// This *is* the canonical grouping: any two call sites folding the same
/// terms through `lane_sum` produce bit-identical sums, which is how the
/// evaluator keeps its incremental `arr` equal to a rebuild's. The
/// grouping deliberately differs from a serial left fold — callers pin
/// against each other, never against a serial reference.
///
/// ```
/// use fam_core::kernels::lane_sum;
/// let v = [1.5, 2.5, 3.5, 4.5, 5.5];
/// // lanes: (1.5 + 5.5), 2.5, 3.5, 4.5 → (7.0 + 2.5) + (3.5 + 4.5)
/// assert_eq!(lane_sum(v.len(), |i| v[i]), 17.5);
/// ```
#[inline]
pub fn lane_sum<F: FnMut(usize) -> f64>(n: usize, mut f: F) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for (l, lane) in acc.iter_mut().enumerate() {
            *lane += f(i + l);
        }
        i += LANES;
    }
    let mut l = 0;
    while i < n {
        acc[l] += f(i);
        i += 1;
        l += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Maximum of `init` and `f(0), …, f(n-1)` over [`LANES`] lanes. `max`
/// performs no arithmetic, so unlike [`lane_sum`] the result is
/// **bit-identical to the serial fold** for NaN-free inputs (up to the
/// sign of a zero when `±0.0` tie, which no caller observes) — safe to
/// drop into existing scans without re-pinning anything.
#[inline]
pub fn lane_max<F: FnMut(usize) -> f64>(init: f64, n: usize, mut f: F) -> f64 {
    let mut acc = [init; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for (l, lane) in acc.iter_mut().enumerate() {
            *lane = lane.max(f(i + l));
        }
        i += LANES;
    }
    let mut l = 0;
    while i < n {
        acc[l] = acc[l].max(f(i));
        i += 1;
        l += 1;
    }
    (acc[0].max(acc[1])).max(acc[2].max(acc[3]))
}

/// Cache-blocked transpose of one band of columns: rows `0..n_rows` of
/// `src` (physical row width `src_stride`) land at
/// `out[local * dst_col_stride + dst_offset + u]` for band-local column
/// `local` (absolute column `first_col + local`). Row blocks of [`TILE`]
/// samples keep both the source rows and the destination columns
/// cache-resident. Shared by the mirror construction, the in-slack
/// sample append, and the mirror re-lay pass.
#[allow(clippy::too_many_arguments)]
pub fn transpose_band(
    src: &[f64],
    n_rows: usize,
    src_stride: usize,
    out: &mut [f64],
    dst_col_stride: usize,
    dst_offset: usize,
    first_col: usize,
    band: usize,
) {
    for u0 in (0..n_rows).step_by(TILE) {
        let u1 = (u0 + TILE).min(n_rows);
        for local in 0..band {
            let p = first_col + local;
            let col = &mut out[local * dst_col_stride..(local + 1) * dst_col_stride];
            for u in u0..u1 {
                col[dst_offset + u] = src[u * src_stride + p];
            }
        }
    }
}

/// Cache-blocked transpose of `n_rows` sample-major rows (physical row
/// width `src_stride`) into per-column segments of `dst`: row `u`,
/// column `p` lands at `dst[p * dst_col_stride + dst_offset + u]`.
/// Parallelized over bands of whole columns (`dst.len()` must be a
/// multiple of `dst_col_stride`); bands never go below [`TILE`] columns
/// — a one-column band would degenerate the blocked transpose into a
/// cache miss per element.
pub fn transpose_into(
    src: &[f64],
    n_rows: usize,
    src_stride: usize,
    dst: &mut [f64],
    dst_col_stride: usize,
    dst_offset: usize,
) {
    let cols_per_chunk = (crate::par::CHUNK / dst_col_stride.max(1)).max(TILE);
    crate::par::for_each_chunk_mut(dst, cols_per_chunk * dst_col_stride, |chunk, out| {
        let first_col = chunk * cols_per_chunk;
        let band = out.len() / dst_col_stride;
        transpose_band(src, n_rows, src_stride, out, dst_col_stride, dst_offset, first_col, band);
    });
}

/// Cache-blocked transpose of a sample-major `n_samples × n_points`
/// buffer (physical row width `stride`) into a tight point-major mirror.
pub fn transpose(scores: &[f64], n_samples: usize, n_points: usize, stride: usize) -> Vec<f64> {
    let mut columns = vec![0.0f64; n_samples * n_points];
    transpose_into(scores, n_samples, stride, &mut columns, n_samples, 0);
    columns
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Sizes straddling every kernel boundary: the empty-adjacent cases,
    /// the lane width, and the tile width ± 1.
    fn edge_sizes() -> Vec<usize> {
        vec![1, 2, LANES - 1, LANES, LANES + 1, TILE - 1, TILE, TILE + 1, 2 * TILE + 3]
    }

    fn serial_first_argmax(row: &[f64]) -> (u32, f64) {
        let (mut bi, mut bv) = (0usize, row[0]);
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > bv {
                bi = i;
                bv = v;
            }
        }
        (bi as u32, bv)
    }

    /// The naive three-pass reference the fused kernels replace:
    /// element validation in element order, then a serial argmax.
    fn naive_three_pass(row: &[f64]) -> Result<(u32, f64), RowIssue> {
        for (col, &v) in row.iter().enumerate() {
            if !v.is_finite() {
                return Err(RowIssue::NonFinite { col });
            }
            if v < 0.0 {
                return Err(RowIssue::Negative { col });
            }
        }
        Ok(serial_first_argmax(row))
    }

    #[test]
    fn dot_exact_cases() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[0.5, 2.0], &[2.0, 0.25]), 1.5);
        // Shorter slice bounds the iteration, either way around.
        assert_eq!(dot(&[1.0, 1.0], &[3.0]), 3.0);
        assert_eq!(dot(&[3.0], &[1.0, 1.0]), 3.0);
    }

    #[test]
    fn row_best_keeps_first_strict_max_across_tile_boundaries() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in edge_sizes() {
            // Coarse quantization forces plenty of exact ties.
            let row: Vec<f64> = (0..n).map(|_| rng.gen_range(0..8) as f64 / 8.0).collect();
            assert_eq!(row_best(&row), serial_first_argmax(&row), "n = {n}, row = {row:?}");
        }
        // A tie straddling a tile boundary must keep the earlier index.
        let mut row = vec![0.1; TILE + 4];
        row[TILE - 1] = 0.9;
        row[TILE + 1] = 0.9;
        assert_eq!(row_best(&row), (TILE as u32 - 1, 0.9));
    }

    #[test]
    fn validate_row_best_matches_naive_three_pass() {
        let mut rng = StdRng::seed_from_u64(12);
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.25, -0.0, 0.0];
        for trial in 0..500 {
            let n = edge_sizes()[trial % edge_sizes().len()];
            let mut row: Vec<f64> = (0..n).map(|_| rng.gen_range(0..16) as f64 / 16.0).collect();
            // Sprinkle up to three special values at random positions.
            for _ in 0..rng.gen_range(0..4) {
                row[rng.gen_range(0..n)] = specials[rng.gen_range(0..specials.len())];
            }
            let got = validate_row_best(&row);
            let want = naive_three_pass(&row);
            match (got, want) {
                (Ok((gi, gv)), Ok((wi, wv))) => {
                    assert_eq!(gi, wi, "trial {trial}: index, row = {row:?}");
                    assert_eq!(gv.to_bits(), wv.to_bits(), "trial {trial}: value");
                }
                (g, w) => assert_eq!(g, w, "trial {trial}: error, row = {row:?}"),
            }
        }
    }

    #[test]
    fn linear_score_row_is_bitwise_dot_per_element() {
        let mut rng = StdRng::seed_from_u64(13);
        // 1–8 take the const-specialized fill, 9 and 12 the dynamic one.
        for dim in [1usize, 3, 4, 7, 8, 9, 12] {
            for n in edge_sizes() {
                let w: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                let flat: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                let mut out = vec![0.0; n];
                let (bi, bv, ok) = linear_score_row(&w, &flat, dim, &mut out);
                assert!(ok);
                for p in 0..n {
                    let want = dot(&w, &flat[p * dim..(p + 1) * dim]);
                    assert_eq!(
                        out[p].to_bits(),
                        want.to_bits(),
                        "dim {dim}, n {n}, point {p}: fused score must equal dot"
                    );
                }
                assert_eq!((bi, bv), serial_first_argmax(&out), "dim {dim}, n {n}: fused best");
                let (ci, cv) = linear_best(&w, &flat, dim);
                assert_eq!((ci, cv.to_bits()), (bi, bv.to_bits()), "linear_best must agree");
            }
        }
    }

    #[test]
    fn linear_score_row_flags_invalid_scores() {
        // A negative coordinate drives one score negative; the fused pass
        // must flag the row and the rescan must locate that element.
        let w = [1.0, 1.0];
        let flat = [0.5, 0.5, 0.25, -0.75, 0.1, 0.2];
        let mut out = vec![0.0; 3];
        let (_, _, ok) = linear_score_row(&w, &flat, 2, &mut out);
        assert!(!ok);
        assert_eq!(validate_row_best(&out), Err(RowIssue::Negative { col: 1 }));
    }

    #[test]
    fn top_two_variants_agree_on_values() {
        let mut rng = StdRng::seed_from_u64(14);
        for trial in 0..200 {
            let n = rng.gen_range(1..2 * TILE);
            let row: Vec<f64> = (0..n).map(|_| rng.gen_range(0..8) as f64 / 8.0).collect();
            let mut members: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.6)).collect();
            // Scramble the member list the way swap-removals do.
            for i in (1..members.len()).rev() {
                members.swap(i, rng.gen_range(0..=i));
            }
            let mut in_sel = vec![false; n];
            for &p in &members {
                in_sel[p as usize] = true;
            }
            let exclude = if members.is_empty() || rng.gen_bool(0.3) {
                NO_POINT
            } else {
                members[rng.gen_range(0..members.len())]
            };
            let (g1, gv1, g2, gv2) = top_two_gather(&row, &members, exclude);
            let (d1, dv1, d2, dv2) = top_two_dense(&row, &in_sel, exclude);
            assert_eq!(gv1.to_bits(), dv1.to_bits(), "trial {trial}: top1 value");
            assert_eq!(gv2.to_bits(), dv2.to_bits(), "trial {trial}: top2 value");
            // Indices agree whenever the winning values are untied; on
            // ties both still point at members holding the same value.
            if g1 != d1 {
                assert_eq!(row[g1 as usize].to_bits(), row[d1 as usize].to_bits());
            }
            if g2 != NO_POINT && d2 != NO_POINT && g2 != d2 {
                assert_eq!(row[g2 as usize].to_bits(), row[d2 as usize].to_bits());
            }
        }
    }

    #[test]
    fn top_two_empty_and_singleton() {
        assert_eq!(top_two_gather(&[0.5], &[], NO_POINT), (NO_POINT, 0.0, NO_POINT, 0.0));
        assert_eq!(top_two_gather(&[0.5], &[0], 0), (NO_POINT, 0.0, NO_POINT, 0.0));
        assert_eq!(top_two_gather(&[0.5], &[0], NO_POINT), (0, 0.5, NO_POINT, 0.0));
        assert_eq!(top_two_dense(&[0.5], &[true], NO_POINT), (0, 0.5, NO_POINT, 0.0));
    }

    #[test]
    fn lane_sum_matches_its_documented_grouping() {
        let mut rng = StdRng::seed_from_u64(15);
        for n in edge_sizes() {
            let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            // Reference: explicit lane decomposition.
            let mut acc = [0.0f64; LANES];
            let full = (n / LANES) * LANES;
            for i in 0..full {
                acc[i % LANES] += v[i];
            }
            for (l, i) in (full..n).enumerate() {
                acc[l] += v[i];
            }
            let want = (acc[0] + acc[1]) + (acc[2] + acc[3]);
            assert_eq!(lane_sum(n, |i| v[i]).to_bits(), want.to_bits(), "n = {n}");
        }
        assert_eq!(lane_sum(0, |_| 1.0), 0.0);
    }

    #[test]
    fn lane_max_matches_serial_fold() {
        let mut rng = StdRng::seed_from_u64(16);
        for n in edge_sizes() {
            let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let want = v.iter().fold(0.25f64, |m, &x| if x > m { x } else { m });
            assert_eq!(lane_max(0.25, n, |i| v[i]).to_bits(), want.to_bits(), "n = {n}");
        }
        assert_eq!(lane_max(0.5, 0, |_| 9.0), 0.5);
    }

    #[test]
    fn transpose_round_trip_with_stride_and_offset() {
        let mut rng = StdRng::seed_from_u64(17);
        for (n_rows, n_cols) in [(1, 1), (1, 5), (5, 1), (TILE + 3, 3), (7, TILE + 2)] {
            let stride = n_cols + 2; // physical slack
            let mut src = vec![0.0; n_rows * stride];
            for r in 0..n_rows {
                for c in 0..n_cols {
                    src[r * stride + c] = rng.gen_range(0.0..1.0);
                }
            }
            let cs = n_rows + 1; // column slack
            let mut dst = vec![0.0; n_cols * cs];
            transpose_into(&src, n_rows, stride, &mut dst, cs, 0);
            for r in 0..n_rows {
                for c in 0..n_cols {
                    assert_eq!(dst[c * cs + r].to_bits(), src[r * stride + c].to_bits());
                }
            }
            let tight = transpose(&src, n_rows, n_cols, stride);
            for r in 0..n_rows {
                for c in 0..n_cols {
                    assert_eq!(tight[c * n_rows + r].to_bits(), src[r * stride + c].to_bits());
                }
            }
        }
    }
}
