//! Deterministic fork-join helpers — the multicore substrate behind the
//! `parallel` cargo feature.
//!
//! The offline dependency set has no `rayon`, so this module provides the
//! small slice of it the workspace needs, built on a **persistent
//! deterministic worker pool** (the private `pool` submodule): workers are spawned once
//! (lazily, `FAM_THREADS`-sized), parked on a condvar, and fed fixed-chunk
//! task ranges through a generation-stamped job slot. Dispatching a job
//! costs a mutex round-trip and a wakeup — low single-digit microseconds —
//! where the previous per-call `std::thread::scope` team paid tens of
//! microseconds of spawn+join latency on every reduction.
//!
//! * [`map_chunks`] — map a function over **fixed-size** index chunks and
//!   return the per-chunk results **in chunk order**;
//! * [`for_each_chunk_mut`] — run a function over disjoint mutable
//!   sub-slices of a buffer (parallel writes without `unsafe`);
//! * [`for_each_chunk_mut_map`] — the same, but each chunk also returns a
//!   value, collected **in chunk order** (fused write+summarize passes);
//! * [`fill_adaptive`] — fill a caller-provided buffer element-wise
//!   (the allocation-free sibling of [`map_adaptive`]).
//!
//! # Determinism contract
//!
//! Every reduction in the workspace folds `map_chunks` results in chunk
//! order, and chunk boundaries depend only on the input length — never on
//! the thread count. The pool changes *who* computes a chunk (workers
//! claim chunk indices from a shared cursor, exactly like the scoped
//! teams did), never *what* is computed or how partials fold. The serial
//! fallback (1 core, the `parallel` feature disabled, or [`force_serial`])
//! executes the *same* chunked code path, so parallel and serial runs
//! produce **bit-identical** floating-point results. Do not "optimize" a
//! caller into accumulating across chunk boundaries; that is what breaks
//! the contract.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "parallel")]
mod pool;

/// Fixed reduction granularity (indices per chunk) used by the evaluation
/// engine. Part of the determinism contract: changing it changes the
/// floating-point grouping of every chunked sum.
pub const CHUNK: usize = 4096;

/// Minimum estimated work units (roughly one score read each) before
/// [`map_adaptive`] / [`fill_adaptive`] fan out instead of running one
/// serial chunk.
///
/// With the persistent worker pool, dispatch costs ~2 µs on the reference
/// host (`pool_forkjoin_overhead_us` in `BENCH_engine.json`, measured
/// against the ~40–70 µs scoped-spawn baseline it replaced), so the gate
/// drops from the old `1 << 18` (~0.25 ms of work) to `1 << 15` (~30 µs):
/// dispatch stays under ~10 % of the smallest batch that fans out, and
/// mid-size slices — the serving sweet spot — parallelize for the first
/// time.
pub const PAR_MIN_WORK: usize = 1 << 15;

static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);
static THREAD_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Forces every helper in this module onto the serial path at runtime.
///
/// Intended for benchmarks (serial-vs-parallel A/B on one binary) and
/// equivalence tests; results are bit-identical either way.
pub fn force_serial(on: bool) {
    FORCE_SERIAL.store(on, Ordering::SeqCst);
}

/// Whether [`force_serial`] is currently active.
pub fn serial_forced() -> bool {
    FORCE_SERIAL.load(Ordering::SeqCst)
}

/// Overrides the worker count ( `None` restores auto-detection). Lets
/// equivalence tests exercise genuine multi-threaded execution on
/// machines that report a single core; [`force_serial`] wins when active.
pub fn set_max_threads(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |t| t.max(1)), Ordering::SeqCst);
}

/// Number of worker threads the helpers may use right now.
#[cfg(feature = "parallel")]
pub fn max_threads() -> usize {
    if serial_forced() {
        return 1;
    }
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => default_threads(),
        t => t,
    }
}

/// The auto-detected thread count: `FAM_THREADS` when set to a positive
/// integer, else [`std::thread::available_parallelism`]. Read once — the
/// pool is process-wide, so flip-flopping the default mid-run would only
/// mislead; use [`set_max_threads`] for dynamic control.
#[cfg(feature = "parallel")]
fn default_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("FAM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Number of worker threads the helpers may use right now (always 1
/// without the `parallel` feature).
#[cfg(not(feature = "parallel"))]
pub fn max_threads() -> usize {
    1
}

/// Pre-spawns the pool's workers for the current [`max_threads`] so the
/// first real dispatch does not pay thread-spawn latency. Called by the
/// serve layer at startup; a no-op when one thread (or no `parallel`
/// feature) makes the pool irrelevant.
pub fn prewarm() {
    #[cfg(feature = "parallel")]
    {
        let threads = max_threads();
        if threads > 1 {
            pool::ensure_workers(threads - 1);
        }
    }
}

/// Lifetime counters of the persistent worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Workers ever spawned (monotone; workers are never torn down).
    pub workers_spawned: usize,
    /// Jobs ever dispatched through the job slot.
    pub jobs_dispatched: u64,
}

/// Snapshot of the pool's lifetime counters — lets tests pin that
/// sequential solves **reuse** workers instead of respawning them, and
/// the bench harness report dispatch counts.
#[cfg(feature = "parallel")]
pub fn pool_stats() -> PoolStats {
    let (workers_spawned, jobs_dispatched) = pool::stats();
    PoolStats { workers_spawned, jobs_dispatched }
}

/// Snapshot of the pool's lifetime counters (always zeros without the
/// `parallel` feature — there is no pool).
#[cfg(not(feature = "parallel"))]
pub fn pool_stats() -> PoolStats {
    PoolStats::default()
}

/// Splits `0..len` into chunks of `chunk` indices (the last may be short).
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..len.div_ceil(chunk)).map(|i| i * chunk..((i + 1) * chunk).min(len)).collect()
}

/// Applies `f` to every chunk of `0..len` and returns the results in
/// chunk order. Runs on up to [`max_threads`] workers; the serial
/// fallback applies `f` to the identical chunks in the identical order.
pub fn map_chunks<R, F>(len: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(len, chunk);
    run_indexed(ranges.len(), max_threads(), |i| f(ranges[i].clone()))
}

/// Applies `f(chunk_index, sub_slice)` to disjoint consecutive sub-slices
/// of `data`, each covering `chunk_items` items (the last may be short).
///
/// Writes are element-wise independent by construction, so the result is
/// identical for any thread count.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_items: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_items > 0, "chunk size must be positive");
    #[cfg(feature = "parallel")]
    {
        let threads = max_threads();
        if threads > 1 && data.len() > chunk_items {
            // One slot per chunk: each pool task claims exactly its own
            // sub-slice, so writes stay disjoint without `unsafe`.
            let slots: Vec<std::sync::Mutex<Option<&mut [T]>>> =
                data.chunks_mut(chunk_items).map(|c| std::sync::Mutex::new(Some(c))).collect();
            let task = |i: usize| {
                let chunk = lock_unpoisoned(&slots[i]).take().expect("each chunk claimed once");
                f(i, chunk);
            };
            pool::run(slots.len(), threads, &task);
            return;
        }
    }
    for (i, c) in data.chunks_mut(chunk_items).enumerate() {
        f(i, c);
    }
}

/// [`for_each_chunk_mut`] fused with a per-chunk return value: applies
/// `f(chunk_index, sub_slice)` to disjoint consecutive sub-slices of
/// `data` and returns the per-chunk results **in chunk order**, exactly
/// like [`map_chunks`].
///
/// This is the primitive behind single-pass "fill a buffer and summarize
/// it while it is still cache-hot" passes (the fused score+validate+best
/// matrix construction): chunk results arrive in chunk order, so a
/// short-circuiting fold over them reproduces serial first-error
/// semantics regardless of thread count.
///
/// ```
/// let mut data = vec![0.0f64; 10];
/// let sums = fam_core::par::for_each_chunk_mut_map(&mut data, 4, |i, c| {
///     for v in c.iter_mut() {
///         *v = i as f64;
///     }
///     c.iter().sum::<f64>()
/// });
/// assert_eq!(sums, vec![0.0, 4.0, 4.0]);
/// ```
pub fn for_each_chunk_mut_map<T, R, F>(data: &mut [T], chunk_items: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_items > 0, "chunk size must be positive");
    #[cfg(feature = "parallel")]
    {
        let threads = max_threads();
        if threads > 1 && data.len() > chunk_items {
            let slots: Vec<std::sync::Mutex<Option<&mut [T]>>> =
                data.chunks_mut(chunk_items).map(|c| std::sync::Mutex::new(Some(c))).collect();
            let out: Vec<std::sync::Mutex<Option<R>>> =
                (0..slots.len()).map(|_| std::sync::Mutex::new(None)).collect();
            let task = |i: usize| {
                let chunk = lock_unpoisoned(&slots[i]).take().expect("each chunk claimed once");
                let r = f(i, chunk);
                *lock_unpoisoned(&out[i]) = Some(r);
            };
            pool::run(slots.len(), threads, &task);
            return collect_slots(out);
        }
    }
    data.chunks_mut(chunk_items).enumerate().map(|(i, c)| f(i, c)).collect()
}

/// Computes `f(i)` for `i in 0..count` on up to `threads` workers,
/// returning results in index order.
fn run_indexed<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    if threads > 1 && count > 1 {
        let out: Vec<std::sync::Mutex<Option<R>>> =
            (0..count).map(|_| std::sync::Mutex::new(None)).collect();
        let task = |i: usize| {
            let r = f(i);
            *lock_unpoisoned(&out[i]) = Some(r);
        };
        pool::run(count, threads, &task);
        return collect_slots(out);
    }
    #[cfg(not(feature = "parallel"))]
    let _ = threads;
    (0..count).map(f).collect()
}

/// Unwraps per-index result slots into an ordered `Vec` — index order, so
/// downstream folds see exactly the serial sequence.
#[cfg(feature = "parallel")]
fn collect_slots<R>(out: Vec<std::sync::Mutex<Option<R>>>) -> Vec<R> {
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every index produces exactly one result")
        })
        .collect()
}

/// Locks ignoring poisoning: the pool contains task panics before they
/// can poison these per-slot mutexes, and a slot holding plain data has
/// no invariant a panic could break mid-update.
#[cfg(feature = "parallel")]
fn lock_unpoisoned<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Chunked map for calls whose per-chunk results are chunking-independent
/// (pure per-item maps, argmin/argmax folds with index tie-breaks — *not*
/// floating-point sums, which need the fixed [`CHUNK`] of [`map_chunks`]).
///
/// `per_item` estimates the work units (roughly one score read each) per
/// index. Batches below [`PAR_MIN_WORK`] total units run as one chunk:
/// even a persistent-pool dispatch costs a couple of microseconds, so
/// tiny batches would still pay more in dispatch latency than the work
/// itself.
pub fn map_adaptive<R, F>(len: usize, per_item: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = max_threads();
    if threads <= 1 || len.saturating_mul(per_item.max(1)) < PAR_MIN_WORK {
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(threads * 4).clamp(1, CHUNK);
    map_chunks(len, chunk, f)
}

/// Fills `out` with `f(i)` per element — the allocation-free sibling of
/// [`map_adaptive`] for per-item pure maps: the caller keeps (and
/// re-uses) the buffer, so steady-state rescans allocate nothing.
///
/// Each element is written exactly once from its own index, so the result
/// is identical for any thread count or chunking — the same contract as
/// [`for_each_chunk_mut`], which this delegates to. `per_item` estimates
/// work units per index exactly as in [`map_adaptive`].
pub fn fill_adaptive<R, F>(out: &mut [R], per_item: usize, f: F)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let len = out.len();
    if len == 0 {
        return;
    }
    let threads = max_threads();
    if threads <= 1 || len.saturating_mul(per_item.max(1)) < PAR_MIN_WORK {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = len.div_ceil(threads * 4).clamp(1, CHUNK);
    for_each_chunk_mut(out, chunk, |ci, sub| {
        let base = ci * chunk;
        for (j, slot) in sub.iter_mut().enumerate() {
            *slot = f(base + j);
        }
    });
}

/// Deterministic parallel argument-reduction over `0..len`: evaluates
/// `eval(i)` for every index (`None` skips it) and keeps the winning
/// `(value, index)` under `better(candidate, incumbent)` (`true` when the
/// candidate **strictly** wins).
///
/// Chunk winners fold in chunk order, so ties always keep the earliest
/// index — exactly what a serial first-wins scan produces. Every argmin /
/// argmax fan-out in the workspace goes through here so the tie-break
/// rule is single-sourced; `per_item` is the work estimate per index (see
/// [`map_adaptive`]).
pub fn arg_reduce<V, E, B>(len: usize, per_item: usize, eval: E, better: B) -> Option<(V, usize)>
where
    V: Send,
    E: Fn(usize) -> Option<V> + Sync,
    B: Fn(&V, &V) -> bool + Sync,
{
    map_adaptive(len, per_item, |range| {
        let mut best: Option<(V, usize)> = None;
        for i in range {
            if let Some(v) = eval(i) {
                match &best {
                    Some((incumbent, _)) if !better(&v, incumbent) => {}
                    _ => best = Some((v, i)),
                }
            }
        }
        best
    })
    .into_iter()
    .flatten()
    .reduce(|a, b| if better(&b.0, &a.0) { b } else { a })
}

/// Sums `f` over fixed chunks of `0..len`, folding partial sums in chunk
/// order — the canonical deterministic reduction of the engine.
pub fn sum_chunked<F>(len: usize, f: F) -> f64
where
    F: Fn(Range<usize>) -> f64 + Sync,
{
    map_chunks(len, CHUNK, f).into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_everything() {
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 4), vec![0..3]);
    }

    #[test]
    fn map_chunks_returns_in_order() {
        let got = map_chunks(1000, 7, |r| r.start);
        let want: Vec<usize> = (0..1000).step_by(7).collect();
        assert_eq!(got, want);
    }

    // The two checks below toggle the process-global execution-mode
    // switches, so they run inside one #[test]: on concurrent harness
    // threads one check's force_serial(true) could overlap the other's
    // parallel leg and make the comparison vacuous.
    #[test]
    fn execution_mode_toggles_preserve_results() {
        forced_serial_matches_parallel();
        arg_reduce_matches_serial_first_wins_scan();
    }

    fn forced_serial_matches_parallel() {
        let f = |r: Range<usize>| r.map(|i| (i as f64).sqrt()).sum::<f64>();
        force_serial(true);
        let serial = sum_chunked(100_000, f);
        force_serial(false);
        set_max_threads(Some(4));
        let parallel = sum_chunked(100_000, f);
        set_max_threads(None);
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn for_each_chunk_mut_writes_disjointly() {
        let mut data = vec![0usize; 1003];
        for_each_chunk_mut(&mut data, 10, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = i * 10 + j;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn for_each_chunk_mut_map_returns_in_chunk_order() {
        let mut data = vec![0usize; 1003];
        let firsts = for_each_chunk_mut_map(&mut data, 10, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = i * 10 + j;
            }
            c[0]
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
        let want: Vec<usize> = (0..1003).step_by(10).collect();
        assert_eq!(firsts, want);
    }

    fn arg_reduce_matches_serial_first_wins_scan() {
        // Values with many ties: the winner must be the earliest index
        // among the minima, with skips honored, in every mode.
        let vals: Vec<u64> = (0..10_000).map(|i| (i * 7919) % 13).collect();
        let eval = |i: usize| (!i.is_multiple_of(3)).then_some(vals[i]);
        let serial_expected = vals
            .iter()
            .enumerate()
            .filter(|(i, _)| !i.is_multiple_of(3))
            .min_by_key(|&(_, v)| v)
            .map(|(i, v)| (*v, i));
        force_serial(true);
        let serial = arg_reduce(vals.len(), 1 << 10, eval, |a, b| a < b);
        force_serial(false);
        set_max_threads(Some(4));
        let parallel = arg_reduce(vals.len(), 1 << 10, eval, |a, b| a < b);
        set_max_threads(None);
        assert_eq!(serial, serial_expected);
        assert_eq!(serial, parallel);
        assert_eq!(arg_reduce(0, 1, |_| Some(1u8), |a, b| a < b), None);
    }

    #[test]
    fn sum_chunked_is_chunk_order_fold() {
        let direct: f64 =
            map_chunks(10_000, CHUNK, |r| r.map(|i| i as f64).sum::<f64>()).into_iter().sum();
        assert_eq!(direct.to_bits(), sum_chunked(10_000, |r| r.map(|i| i as f64).sum()).to_bits());
    }

    #[test]
    fn fill_adaptive_matches_serial_fill() {
        let mut serial = vec![0u64; 40_000];
        let mut parallel = vec![0u64; 40_000];
        force_serial(true);
        fill_adaptive(&mut serial, 16, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        force_serial(false);
        set_max_threads(Some(4));
        fill_adaptive(&mut parallel, 16, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        set_max_threads(None);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 7u64.wrapping_mul(0x9E37_79B9));
        let mut empty: Vec<u64> = Vec::new();
        fill_adaptive(&mut empty, 16, |_| 0);
        assert!(empty.is_empty());
    }
}
