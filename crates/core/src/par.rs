//! Deterministic fork-join helpers — the multicore substrate behind the
//! `parallel` cargo feature.
//!
//! The offline dependency set has no `rayon`, so this module provides the
//! small slice of it the workspace needs, built on `std::thread::scope`:
//!
//! * [`map_chunks`] — map a function over **fixed-size** index chunks and
//!   return the per-chunk results **in chunk order**;
//! * [`for_each_chunk_mut`] — run a function over disjoint mutable
//!   sub-slices of a buffer (parallel writes without `unsafe`);
//! * [`for_each_chunk_mut_map`] — the same, but each chunk also returns a
//!   value, collected **in chunk order** (fused write+summarize passes).
//!
//! # Determinism contract
//!
//! Every reduction in the workspace folds `map_chunks` results in chunk
//! order, and chunk boundaries depend only on the input length — never on
//! the thread count. The serial fallback (1 core, the `parallel` feature
//! disabled, or [`force_serial`]) executes the *same* chunked code path,
//! so parallel and serial runs produce **bit-identical** floating-point
//! results. Do not "optimize" a caller into accumulating across chunk
//! boundaries; that is what breaks the contract.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

/// Fixed reduction granularity (indices per chunk) used by the evaluation
/// engine. Part of the determinism contract: changing it changes the
/// floating-point grouping of every chunked sum.
pub const CHUNK: usize = 4096;

static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);
static THREAD_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Forces every helper in this module onto the serial path at runtime.
///
/// Intended for benchmarks (serial-vs-parallel A/B on one binary) and
/// equivalence tests; results are bit-identical either way.
pub fn force_serial(on: bool) {
    FORCE_SERIAL.store(on, Ordering::SeqCst);
}

/// Whether [`force_serial`] is currently active.
pub fn serial_forced() -> bool {
    FORCE_SERIAL.load(Ordering::SeqCst)
}

/// Overrides the worker count ( `None` restores auto-detection). Lets
/// equivalence tests exercise genuine multi-threaded execution on
/// machines that report a single core; [`force_serial`] wins when active.
pub fn set_max_threads(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |t| t.max(1)), Ordering::SeqCst);
}

/// Number of worker threads the helpers may use right now.
#[cfg(feature = "parallel")]
pub fn max_threads() -> usize {
    if serial_forced() {
        return 1;
    }
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        t => t,
    }
}

/// Number of worker threads the helpers may use right now (always 1
/// without the `parallel` feature).
#[cfg(not(feature = "parallel"))]
pub fn max_threads() -> usize {
    1
}

/// Splits `0..len` into chunks of `chunk` indices (the last may be short).
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..len.div_ceil(chunk)).map(|i| i * chunk..((i + 1) * chunk).min(len)).collect()
}

/// Applies `f` to every chunk of `0..len` and returns the results in
/// chunk order. Runs on up to [`max_threads`] workers; the serial
/// fallback applies `f` to the identical chunks in the identical order.
pub fn map_chunks<R, F>(len: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(len, chunk);
    run_indexed(ranges.len(), max_threads(), |i| f(ranges[i].clone()))
}

/// Applies `f(chunk_index, sub_slice)` to disjoint consecutive sub-slices
/// of `data`, each covering `chunk_items` items (the last may be short).
///
/// Writes are element-wise independent by construction, so the result is
/// identical for any thread count.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_items: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_items > 0, "chunk size must be positive");
    let threads = max_threads();
    if threads <= 1 || data.len() <= chunk_items {
        for (i, c) in data.chunks_mut(chunk_items).enumerate() {
            f(i, c);
        }
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_items);
    let queue: std::sync::Mutex<std::iter::Enumerate<std::slice::ChunksMut<'_, T>>> =
        std::sync::Mutex::new(data.chunks_mut(chunk_items).enumerate());
    std::thread::scope(|s| {
        for _ in 0..threads.min(n_chunks) {
            s.spawn(|| loop {
                let item = queue.lock().expect("chunk queue poisoned").next();
                match item {
                    Some((i, c)) => f(i, c),
                    None => break,
                }
            });
        }
    });
}

/// [`for_each_chunk_mut`] fused with a per-chunk return value: applies
/// `f(chunk_index, sub_slice)` to disjoint consecutive sub-slices of
/// `data` and returns the per-chunk results **in chunk order**, exactly
/// like [`map_chunks`].
///
/// This is the primitive behind single-pass "fill a buffer and summarize
/// it while it is still cache-hot" passes (the fused score+validate+best
/// matrix construction): chunk results arrive in chunk order, so a
/// short-circuiting fold over them reproduces serial first-error
/// semantics regardless of thread count.
///
/// ```
/// let mut data = vec![0.0f64; 10];
/// let sums = fam_core::par::for_each_chunk_mut_map(&mut data, 4, |i, c| {
///     for v in c.iter_mut() {
///         *v = i as f64;
///     }
///     c.iter().sum::<f64>()
/// });
/// assert_eq!(sums, vec![0.0, 4.0, 4.0]);
/// ```
pub fn for_each_chunk_mut_map<T, R, F>(data: &mut [T], chunk_items: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_items > 0, "chunk size must be positive");
    let threads = max_threads();
    if threads <= 1 || data.len() <= chunk_items {
        return data.chunks_mut(chunk_items).enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let n_chunks = data.len().div_ceil(chunk_items);
    let queue: std::sync::Mutex<std::iter::Enumerate<std::slice::ChunksMut<'_, T>>> =
        std::sync::Mutex::new(data.chunks_mut(chunk_items).enumerate());
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n_chunks) {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            s.spawn(move || loop {
                let item = queue.lock().expect("chunk queue poisoned").next();
                match item {
                    Some((i, c)) => {
                        if tx.send((i, f(i, c))).is_err() {
                            break;
                        }
                    }
                    None => break,
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter().map(|o| o.expect("every chunk sends exactly one result")).collect()
    })
}

/// Computes `f(i)` for `i in 0..count` on up to `threads` workers,
/// returning results in index order.
fn run_indexed<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..threads.min(count) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..count).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter().map(|o| o.expect("every chunk sends exactly one result")).collect()
    })
}

/// Chunked map for calls whose per-chunk results are chunking-independent
/// (pure per-item maps, argmin/argmax folds with index tie-breaks — *not*
/// floating-point sums, which need the fixed [`CHUNK`] of [`map_chunks`]).
///
/// `per_item` estimates the work units (roughly one score read each) per
/// index. Batches below ~256k total units (~0.25 ms) run as one chunk:
/// spawning a scoped-thread team costs tens of microseconds, so smaller
/// batches — e.g. the per-removal rescans inside GREEDY-SHRINK's loop —
/// would pay more in spawn latency than the work itself.
pub fn map_adaptive<R, F>(len: usize, per_item: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = max_threads();
    if threads <= 1 || len.saturating_mul(per_item.max(1)) < (1 << 18) {
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(threads * 4).clamp(1, CHUNK);
    map_chunks(len, chunk, f)
}

/// Deterministic parallel argument-reduction over `0..len`: evaluates
/// `eval(i)` for every index (`None` skips it) and keeps the winning
/// `(value, index)` under `better(candidate, incumbent)` (`true` when the
/// candidate **strictly** wins).
///
/// Chunk winners fold in chunk order, so ties always keep the earliest
/// index — exactly what a serial first-wins scan produces. Every argmin /
/// argmax fan-out in the workspace goes through here so the tie-break
/// rule is single-sourced; `per_item` is the work estimate per index (see
/// [`map_adaptive`]).
pub fn arg_reduce<V, E, B>(len: usize, per_item: usize, eval: E, better: B) -> Option<(V, usize)>
where
    V: Send,
    E: Fn(usize) -> Option<V> + Sync,
    B: Fn(&V, &V) -> bool + Sync,
{
    map_adaptive(len, per_item, |range| {
        let mut best: Option<(V, usize)> = None;
        for i in range {
            if let Some(v) = eval(i) {
                match &best {
                    Some((incumbent, _)) if !better(&v, incumbent) => {}
                    _ => best = Some((v, i)),
                }
            }
        }
        best
    })
    .into_iter()
    .flatten()
    .reduce(|a, b| if better(&b.0, &a.0) { b } else { a })
}

/// Sums `f` over fixed chunks of `0..len`, folding partial sums in chunk
/// order — the canonical deterministic reduction of the engine.
pub fn sum_chunked<F>(len: usize, f: F) -> f64
where
    F: Fn(Range<usize>) -> f64 + Sync,
{
    map_chunks(len, CHUNK, f).into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_everything() {
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 4), vec![0..3]);
    }

    #[test]
    fn map_chunks_returns_in_order() {
        let got = map_chunks(1000, 7, |r| r.start);
        let want: Vec<usize> = (0..1000).step_by(7).collect();
        assert_eq!(got, want);
    }

    // The two checks below toggle the process-global execution-mode
    // switches, so they run inside one #[test]: on concurrent harness
    // threads one check's force_serial(true) could overlap the other's
    // parallel leg and make the comparison vacuous.
    #[test]
    fn execution_mode_toggles_preserve_results() {
        forced_serial_matches_parallel();
        arg_reduce_matches_serial_first_wins_scan();
    }

    fn forced_serial_matches_parallel() {
        let f = |r: Range<usize>| r.map(|i| (i as f64).sqrt()).sum::<f64>();
        force_serial(true);
        let serial = sum_chunked(100_000, f);
        force_serial(false);
        set_max_threads(Some(4));
        let parallel = sum_chunked(100_000, f);
        set_max_threads(None);
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn for_each_chunk_mut_writes_disjointly() {
        let mut data = vec![0usize; 1003];
        for_each_chunk_mut(&mut data, 10, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = i * 10 + j;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn for_each_chunk_mut_map_returns_in_chunk_order() {
        let mut data = vec![0usize; 1003];
        let firsts = for_each_chunk_mut_map(&mut data, 10, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = i * 10 + j;
            }
            c[0]
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
        let want: Vec<usize> = (0..1003).step_by(10).collect();
        assert_eq!(firsts, want);
    }

    fn arg_reduce_matches_serial_first_wins_scan() {
        // Values with many ties: the winner must be the earliest index
        // among the minima, with skips honored, in every mode.
        let vals: Vec<u64> = (0..10_000).map(|i| (i * 7919) % 13).collect();
        let eval = |i: usize| (!i.is_multiple_of(3)).then_some(vals[i]);
        let serial_expected = vals
            .iter()
            .enumerate()
            .filter(|(i, _)| !i.is_multiple_of(3))
            .min_by_key(|&(_, v)| v)
            .map(|(i, v)| (*v, i));
        force_serial(true);
        let serial = arg_reduce(vals.len(), 1 << 10, eval, |a, b| a < b);
        force_serial(false);
        set_max_threads(Some(4));
        let parallel = arg_reduce(vals.len(), 1 << 10, eval, |a, b| a < b);
        set_max_threads(None);
        assert_eq!(serial, serial_expected);
        assert_eq!(serial, parallel);
        assert_eq!(arg_reduce(0, 1, |_| Some(1u8), |a, b| a < b), None);
    }

    #[test]
    fn sum_chunked_is_chunk_order_fold() {
        let direct: f64 =
            map_chunks(10_000, CHUNK, |r| r.map(|i| i as f64).sum::<f64>()).into_iter().sum();
        assert_eq!(direct.to_bits(), sum_chunked(10_000, |r| r.map(|i| i as f64).sum()).to_bits());
    }
}
