//! The persistent deterministic worker pool behind [`super`]'s helpers.
//!
//! Every parallel helper in `fam_core::par` used to rebuild a scoped-thread
//! team per call (`std::thread::scope`), paying tens of microseconds of
//! spawn+join latency on every reduction — enough that `PAR_MIN_WORK` had
//! to gate all mid-size slices out of parallelism. This module replaces
//! that with workers spawned **once** (lazily, sized by `FAM_THREADS` /
//! [`super::max_threads`]), parked on a condvar, and fed jobs through a
//! single generation-stamped slot.
//!
//! # Job-slot protocol
//!
//! A job is `(task, count)`: an opaque `Fn(usize)` plus the number of
//! indices to feed it. Dispatch publishes the job in the slot under the
//! pool mutex, bumps the generation stamp, and wakes the workers; then the
//! dispatcher itself participates. Everyone — dispatcher and workers —
//! claims indices from the job's shared atomic cursor (`fetch_add`), so
//! assignment is dynamic but **what** is computed per index is fixed:
//! determinism needs chunk *boundaries and fold order* to be
//! thread-count-invariant, not chunk *placement* (see the contract notes
//! in [`super`]). A worker that wakes late simply sees an exhausted cursor
//! and goes back to sleep; a worker that wakes after the slot moved on
//! compares the generation stamp it last served and picks up the current
//! job, never a stale one (the `Arc` in the slot is the only handle).
//!
//! The dispatcher returns only after `finished == count`, i.e. after every
//! claimed index has completed — that wait is what makes the lifetime
//! erasure below sound, and it doubles as the join. Task panics are caught
//! per index ([`std::panic::catch_unwind`]), the first payload is stashed
//! on the job, the count still advances (so the dispatcher cannot hang),
//! and the payload is re-raised on the **dispatching** thread once the job
//! drains. Workers therefore never unwind and the pool survives panicking
//! jobs without poisoning later ones.
//!
//! # Why `unsafe`, and why it is sound
//!
//! Worker threads are `'static`, but the closures the helpers hand us
//! borrow the caller's stack (the data being reduced, the result slots).
//! Safe Rust cannot express "this borrow outlives the job because the
//! dispatcher blocks until the job drains", so dispatch erases the task
//! reference's lifetime (one audited `transmute`). Soundness argument:
//!
//! * the erased reference is dereferenced only inside [`Job::run`], and
//!   only for indices claimed while `cursor < count`;
//! * [`run`] does not return — normally or by unwind — until `finished`
//!   reaches `count`, which happens only after every claimed index's task
//!   call has returned (panics included, via `catch_unwind`);
//! * a worker holding the job `Arc` after that point only ever observes an
//!   exhausted cursor and never touches the task again.
//!
//! Hence every dereference happens while the caller's frame — and with it
//! the referent and everything the closure captures — is still alive.
//! This is the same argument scoped threads make, relocated from the type
//! system into this module; it is the entire unsafe surface of the
//! workspace (`lib.rs` carries the matching `deny(unsafe_code)` waiver).
#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Hard cap on spawned workers — a backstop against absurd `FAM_THREADS`
/// values, far above any real core count this workspace targets.
const MAX_WORKERS: usize = 256;

/// One dispatched job: a lifetime-erased task plus its index cursor.
struct Job {
    /// The erased task. NEVER dereferenced after `finished == count`; see
    /// the module docs for the full soundness argument.
    task: &'static (dyn Fn(usize) + Sync),
    count: usize,
    cursor: AtomicUsize,
    finished: AtomicUsize,
    /// First panic payload raised by a task call, re-raised by [`run`].
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl Job {
    /// Claims and runs indices until the cursor is exhausted. Called by
    /// the dispatcher and by every woken worker; panics are contained.
    fn drive(&self, pool: &Pool) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                return;
            }
            // SAFETY: `i < count` implies the dispatcher is still blocked
            // in `run`, so the referent (and the closure's captures) are
            // alive. See the module-level soundness argument.
            let task = self.task;
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                let mut slot = lock_unpoisoned(&self.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            // AcqRel: the dispatcher's Acquire read of the final count
            // synchronizes with every task's writes through the release
            // sequence of these RMWs.
            if self.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.count {
                // Last index done: wake the dispatcher. Taking the state
                // lock pairs with its check-then-wait and prevents a lost
                // wakeup.
                drop(pool.state.lock());
                pool.done.notify_all();
            }
        }
    }
}

struct PoolState {
    /// Bumped on every dispatch; workers use it to tell a fresh job from
    /// the one they just drained.
    generation: u64,
    /// The job slot. `None` between jobs; holding the `Arc` elsewhere
    /// keeps a drained job alive for stragglers, who only ever observe
    /// its exhausted cursor.
    job: Option<Arc<Job>>,
    workers: usize,
    jobs_dispatched: u64,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a new generation.
    work: Condvar,
    /// Dispatchers park here waiting for their job to drain.
    done: Condvar,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                workers: 0,
                jobs_dispatched: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        })
    }
}

/// Locks ignoring poisoning: workers never unwind while holding the state
/// lock (task panics are caught first), so a poisoned flag can only come
/// from a panicking *caller* unwinding through [`run`] — whose state is
/// still consistent (the slot holds an `Arc`, counters are atomics).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Spawns workers until at least `want` exist (capped at [`MAX_WORKERS`]).
/// This and `server.rs`'s acceptor are the only sanctioned spawn sites in
/// the workspace — fam-lint rule T001 keeps it that way.
fn ensure_workers_locked(pool: &'static Pool, st: &mut PoolState, want: usize) {
    while st.workers < want.min(MAX_WORKERS) {
        st.workers += 1;
        std::thread::Builder::new()
            .name(format!("fam-par-{}", st.workers))
            .spawn(move || worker_loop(pool))
            .expect("spawning pool worker");
    }
}

/// Pre-spawns `want` workers so the first dispatch does not pay spawn
/// latency (the serve layer calls this at startup).
pub(super) fn ensure_workers(want: usize) {
    let pool = Pool::global();
    let mut st = lock_unpoisoned(&pool.state);
    ensure_workers_locked(pool, &mut st, want);
}

/// (workers ever spawned, jobs ever dispatched) — observability for the
/// pool-reuse tests and the bench harness.
pub(super) fn stats() -> (usize, u64) {
    let st = lock_unpoisoned(&Pool::global().state);
    (st.workers, st.jobs_dispatched)
}

fn worker_loop(pool: &'static Pool) {
    let mut served = 0u64;
    loop {
        let job = {
            let mut st = lock_unpoisoned(&pool.state);
            loop {
                if st.generation != served {
                    served = st.generation;
                    if let Some(j) = &st.job {
                        break Arc::clone(j);
                    }
                    // Generation moved but the job already drained and was
                    // cleared — nothing to help with; park again.
                }
                st = pool.work.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        job.drive(pool);
    }
}

/// Runs `task(i)` for every `i in 0..count` on the persistent pool with up
/// to `threads` participants (the dispatching thread plus `threads - 1`
/// workers; idle workers beyond that may also help — placement never
/// affects results). Blocks until every index has completed; re-raises the
/// first task panic on this thread afterwards.
pub(super) fn run(count: usize, threads: usize, task: &(dyn Fn(usize) + Sync)) {
    debug_assert!(count > 0 && threads > 1);
    if let Err(e) = crate::failpoints::fail_point("par.dispatch") {
        // Dispatch is infallible by signature; an injected Error surfaces
        // the same way an injected Panic does. Chaos tests pin that a
        // faulted dispatch leaves the pool serving later jobs.
        panic!("par.dispatch: injected fault: {e}");
    }
    // SAFETY: lifetime erasure only — same layout, shorter-lived referent.
    // `run` blocks below until every claimed index completes, so the
    // referent outlives every dereference (module-level argument).
    let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let job = Arc::new(Job {
        task: erased,
        count,
        cursor: AtomicUsize::new(0),
        finished: AtomicUsize::new(0),
        panic: Mutex::new(None),
    });
    let pool = Pool::global();
    {
        let mut st = lock_unpoisoned(&pool.state);
        ensure_workers_locked(pool, &mut st, threads - 1);
        st.generation = st.generation.wrapping_add(1);
        st.jobs_dispatched += 1;
        st.job = Some(Arc::clone(&job));
        pool.work.notify_all();
    }
    // The dispatcher is a full participant — on a one-core host it usually
    // drains the whole job before any worker wakes, which is exactly what
    // keeps dispatch overhead in the low microseconds.
    job.drive(pool);
    {
        let mut st = lock_unpoisoned(&pool.state);
        while job.finished.load(Ordering::Acquire) < count {
            st = pool.done.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // Clear the slot iff it still holds *this* job (a concurrent
        // dispatch may have replaced it already).
        if st.job.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, &job)) {
            st.job = None;
        }
    }
    let payload = lock_unpoisoned(&job.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}
