//! The sampled utility-score matrix.
//!
//! Every FAM algorithm in this workspace consumes utilities through a
//! [`ScoreMatrix`]: an `N × n` matrix whose entry `(u, p)` is the utility of
//! point `p` under sampled (or enumerated) utility function `u`. Building it
//! corresponds exactly to the paper's preprocessing step: sample `N` utility
//! functions from `Θ` (`O(nN)`) and find each user's best point in `D`
//! (`O(nN)`).
//!
//! # Dual layout
//!
//! The matrix is stored **sample-major** (row `u` is contiguous) *and*, by
//! default, mirrored **point-major** (column `p` contiguous) at roughly 2×
//! memory. The two layouts serve the two access patterns of the paper's
//! algorithms:
//!
//! * removal rescans (GREEDY-SHRINK, the evaluator's `rebuild`) stream a
//!   sample's **row**;
//! * addition scans (ADD-GREEDY, K-HIT, MRR-GREEDY) stream a candidate
//!   point's **column** — without the mirror each probe is a stride-`n`
//!   cache miss.
//!
//! Both layouts are reachable through [`ScoreSource::row_slice`] /
//! [`ScoreSource::column_slice`]; call [`ScoreMatrix::drop_column_mirror`]
//! to trade the addition-scan speedup back for memory (the compact
//! [`crate::linear_scores::LinearScores`] substrate never builds a
//! mirror). Construction and the per-row best-point pass run on all cores
//! when the default `parallel` feature is enabled; results are
//! bit-identical to the serial build (see [`crate::par`]).

use std::sync::Arc;

use rand::RngCore;

use crate::dataset::Dataset;
use crate::distribution::{DiscreteDistribution, UtilityDistribution};
use crate::error::{FamError, Result};
use crate::utility::UtilityFunction;

/// Read access to sampled utility scores — the interface every FAM
/// algorithm evaluates through.
///
/// The canonical implementation is the materialized [`ScoreMatrix`]
/// (`O(nN)` space). [`crate::linear_scores::LinearScores`] trades space for
/// time per Section III-D-3 of the paper: `O(d(N+n))` storage with scores
/// recomputed on demand (a factor-`d` time overhead).
pub trait ScoreSource: Send + Sync {
    /// Number of utility samples `N`.
    fn n_samples(&self) -> usize;
    /// Number of database points `n`.
    fn n_points(&self) -> usize;
    /// Score of point `p` under sample `u`.
    fn score(&self, u: usize, p: usize) -> f64;
    /// Probability mass of sample `u` (sums to 1 over all samples).
    fn weight(&self, u: usize) -> f64;
    /// Index of sample `u`'s best point in the full database.
    fn best_index(&self, u: usize) -> usize;
    /// `sat(D, f_u)` — sample `u`'s best database score.
    fn best_value(&self, u: usize) -> f64;

    /// Contiguous slice of sample `u`'s scores over all points, when the
    /// substrate stores samples contiguously. Algorithms use this to turn
    /// per-element [`ScoreSource::score`] probes into streaming reads; the
    /// default (`None`) keeps recomputing substrates valid.
    fn row_slice(&self, u: usize) -> Option<&[f64]> {
        let _ = u;
        None
    }

    /// Contiguous slice of point `p`'s scores over all samples, when the
    /// substrate maintains a point-major layout (see
    /// [`ScoreMatrix::column`]). The default (`None`) signals that column
    /// access costs a stride-`n_points` walk.
    fn column_slice(&self, p: usize) -> Option<&[f64]> {
        let _ = p;
        None
    }
}

impl ScoreSource for ScoreMatrix {
    #[inline]
    fn n_samples(&self) -> usize {
        ScoreMatrix::n_samples(self)
    }

    #[inline]
    fn n_points(&self) -> usize {
        ScoreMatrix::n_points(self)
    }

    #[inline]
    fn score(&self, u: usize, p: usize) -> f64 {
        ScoreMatrix::score(self, u, p)
    }

    #[inline]
    fn weight(&self, u: usize) -> f64 {
        ScoreMatrix::weight(self, u)
    }

    #[inline]
    fn best_index(&self, u: usize) -> usize {
        ScoreMatrix::best_index(self, u)
    }

    #[inline]
    fn best_value(&self, u: usize) -> f64 {
        ScoreMatrix::best_value(self, u)
    }

    #[inline]
    fn row_slice(&self, u: usize) -> Option<&[f64]> {
        Some(ScoreMatrix::row(self, u))
    }

    #[inline]
    fn column_slice(&self, p: usize) -> Option<&[f64]> {
        ScoreMatrix::column(self, p)
    }
}

/// An `N × n` matrix of utility scores with per-row probability weights.
///
/// Row `u` holds the utility of every database point under utility function
/// `u`; `weight(u)` is the probability mass of that function (uniform `1/N`
/// for i.i.d. samples, the exact atom probability for countable `F`). The
/// per-row best point over the full database — `sat(D, f)` and its argmax —
/// is precomputed at construction.
#[derive(Debug, Clone)]
pub struct ScoreMatrix {
    scores: Vec<f64>,
    /// Point-major mirror: `columns[p * n_samples + u] == scores[u * n_points + p]`.
    /// Built at construction unless opted out; costs ~2× memory and buys
    /// contiguous column access for addition scans.
    columns: Option<Vec<f64>>,
    n_samples: usize,
    n_points: usize,
    weights: Vec<f64>,
    best_index: Vec<u32>,
    best_value: Vec<f64>,
}

impl ScoreMatrix {
    /// Builds the matrix by sampling `n_samples` utility functions from
    /// `dist` and scoring every point of `dataset`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n_samples == 0`, a sampled function produces a
    /// non-finite or negative score, or some function scores every point 0
    /// (regret ratio undefined).
    pub fn from_distribution(
        dataset: &Dataset,
        dist: &dyn UtilityDistribution,
        n_samples: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self> {
        if n_samples == 0 {
            return Err(FamError::InvalidParameter {
                name: "n_samples",
                message: "must be at least 1".into(),
            });
        }
        let functions: Vec<Arc<dyn UtilityFunction>> =
            (0..n_samples).map(|_| dist.sample(rng)).collect();
        Self::from_functions(dataset, &functions, None)
    }

    /// Builds the matrix from explicit utility functions with optional
    /// probability weights (normalized; uniform when `None`).
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as
    /// [`ScoreMatrix::from_distribution`], or if `weights` has the wrong
    /// length or invalid values.
    pub fn from_functions(
        dataset: &Dataset,
        functions: &[Arc<dyn UtilityFunction>],
        weights: Option<Vec<f64>>,
    ) -> Result<Self> {
        if functions.is_empty() {
            return Err(FamError::InvalidParameter {
                name: "functions",
                message: "must supply at least one utility function".into(),
            });
        }
        let n_points = dataset.len();
        // Score samples in parallel: each worker fills a disjoint block of
        // whole rows, so the buffer is identical for any thread count.
        let mut scores = vec![0.0f64; functions.len() * n_points];
        let rows_per_chunk = (crate::par::CHUNK / n_points.max(1)).max(1);
        crate::par::for_each_chunk_mut(&mut scores, rows_per_chunk * n_points, |chunk, out| {
            let first_row = chunk * rows_per_chunk;
            for (local, row) in out.chunks_mut(n_points).enumerate() {
                let f = &functions[first_row + local];
                for (idx, p) in dataset.points().enumerate() {
                    row[idx] = f.utility(idx, p);
                }
            }
        });
        Self::from_flat(scores, functions.len(), n_points, weights)
    }

    /// Builds the matrix by exact enumeration of a countable distribution
    /// (Appendix A) — no sampling error.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as
    /// [`ScoreMatrix::from_functions`].
    pub fn from_discrete_exact(dataset: &Dataset, dist: &DiscreteDistribution) -> Result<Self> {
        Self::from_functions(dataset, dist.functions(), Some(dist.probabilities().to_vec()))
    }

    /// Builds the matrix from raw per-user score rows (the Table I format).
    ///
    /// # Errors
    ///
    /// Returns an error if rows are empty/ragged, scores are invalid, or a
    /// row has no positive score.
    pub fn from_rows(rows: Vec<Vec<f64>>, weights: Option<Vec<f64>>) -> Result<Self> {
        let n_points = rows.first().map(|r| r.len()).ok_or(FamError::EmptyDataset)?;
        let n_samples = rows.len();
        let mut scores = Vec::with_capacity(n_samples * n_points);
        for row in &rows {
            if row.len() != n_points {
                return Err(FamError::DimensionMismatch { expected: n_points, got: row.len() });
            }
            scores.extend_from_slice(row);
        }
        Self::from_flat(scores, n_samples, n_points, weights)
    }

    /// Builds from a flat row-major buffer (`n_samples` rows of `n_points`),
    /// constructing the point-major mirror.
    ///
    /// # Errors
    ///
    /// See [`ScoreMatrix::from_rows`].
    pub fn from_flat(
        scores: Vec<f64>,
        n_samples: usize,
        n_points: usize,
        weights: Option<Vec<f64>>,
    ) -> Result<Self> {
        Self::from_flat_with_layout(scores, n_samples, n_points, weights, true)
    }

    /// Builds from a flat row-major buffer, choosing whether to construct
    /// the point-major mirror (`mirror = false` halves memory but makes
    /// [`ScoreMatrix::column`] return `None`).
    ///
    /// # Errors
    ///
    /// See [`ScoreMatrix::from_rows`].
    pub fn from_flat_with_layout(
        scores: Vec<f64>,
        n_samples: usize,
        n_points: usize,
        weights: Option<Vec<f64>>,
        mirror: bool,
    ) -> Result<Self> {
        if n_points == 0 {
            return Err(FamError::EmptyDataset);
        }
        if n_samples == 0 || scores.len() != n_samples * n_points {
            return Err(FamError::DimensionMismatch {
                expected: n_samples * n_points,
                got: scores.len(),
            });
        }
        // Validate in parallel chunks; the merge keeps the first offending
        // index, matching the serial scan's error exactly.
        let violation = crate::par::map_chunks(scores.len(), crate::par::CHUNK, |range| {
            range.clone().find(|&i| !scores[i].is_finite() || scores[i] < 0.0)
        })
        .into_iter()
        .flatten()
        .next();
        if let Some(i) = violation {
            let (row, col) = (i / n_points, i % n_points);
            if !scores[i].is_finite() {
                return Err(FamError::NonFinite { row, col });
            }
            return Err(FamError::NegativeValue { row, col });
        }
        let weights = match weights {
            Some(mut w) => {
                if w.len() != n_samples {
                    return Err(FamError::InvalidWeights(format!(
                        "expected {n_samples} weights, got {}",
                        w.len()
                    )));
                }
                if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
                    return Err(FamError::InvalidWeights(
                        "weights must be finite and non-negative".into(),
                    ));
                }
                let total: f64 = w.iter().sum();
                if total <= 0.0 {
                    return Err(FamError::InvalidWeights("weights sum to zero".into()));
                }
                w.iter_mut().for_each(|x| *x /= total);
                w
            }
            None => vec![1.0 / n_samples as f64; n_samples],
        };
        // Precompute each user's best point in D (the paper's
        // preprocessing), one parallel chunk of rows at a time.
        let per_row = crate::par::map_chunks(n_samples, crate::par::CHUNK, |rows| {
            rows.map(|u| {
                let row = &scores[u * n_points..(u + 1) * n_points];
                let (mut bi, mut bv) = (0usize, row[0]);
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > bv {
                        bi = i;
                        bv = v;
                    }
                }
                if bv <= 0.0 {
                    return Err(FamError::DegenerateUtility { sample: u });
                }
                Ok((bi as u32, bv))
            })
            .collect::<Result<Vec<_>>>()
        });
        let mut best_index = Vec::with_capacity(n_samples);
        let mut best_value = Vec::with_capacity(n_samples);
        for chunk in per_row {
            for (bi, bv) in chunk? {
                best_index.push(bi);
                best_value.push(bv);
            }
        }
        let columns = mirror.then(|| transpose(&scores, n_samples, n_points));
        Ok(ScoreMatrix { scores, columns, n_samples, n_points, weights, best_index, best_value })
    }

    /// Number of utility samples `N`.
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of database points `n`.
    #[inline]
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Score of point `p` under sample `u`.
    #[inline]
    pub fn score(&self, u: usize, p: usize) -> f64 {
        self.scores[u * self.n_points + p]
    }

    /// Full score row of sample `u`.
    #[inline]
    pub fn row(&self, u: usize) -> &[f64] {
        &self.scores[u * self.n_points..(u + 1) * self.n_points]
    }

    /// Contiguous score column of point `p` (one entry per sample), when
    /// the point-major mirror is present.
    #[inline]
    pub fn column(&self, p: usize) -> Option<&[f64]> {
        self.columns.as_deref().map(|c| &c[p * self.n_samples..(p + 1) * self.n_samples])
    }

    /// Whether the point-major mirror is present.
    #[inline]
    pub fn has_column_mirror(&self) -> bool {
        self.columns.is_some()
    }

    /// Drops the point-major mirror, halving memory; column access falls
    /// back to strided row probes. Used by benchmarks to A/B the layouts.
    #[must_use]
    pub fn drop_column_mirror(mut self) -> Self {
        self.columns = None;
        self
    }

    /// Clone that skips the point-major mirror — the cheap way to obtain a
    /// row-major-only copy for layout A/B comparisons (a full `clone()`
    /// would deep-copy the mirror just to throw it away).
    #[must_use]
    pub fn clone_without_mirror(&self) -> Self {
        ScoreMatrix {
            scores: self.scores.clone(),
            columns: None,
            n_samples: self.n_samples,
            n_points: self.n_points,
            weights: self.weights.clone(),
            best_index: self.best_index.clone(),
            best_value: self.best_value.clone(),
        }
    }

    /// (Re)builds the point-major mirror if absent.
    pub fn build_column_mirror(&mut self) {
        if self.columns.is_none() {
            self.columns = Some(transpose(&self.scores, self.n_samples, self.n_points));
        }
    }

    /// Probability mass of sample `u` (weights sum to 1 over all samples).
    #[inline]
    pub fn weight(&self, u: usize) -> f64 {
        self.weights[u]
    }

    /// All probability weights.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Index of sample `u`'s best point in the full database.
    #[inline]
    pub fn best_index(&self, u: usize) -> usize {
        self.best_index[u] as usize
    }

    /// `sat(D, f_u)` — sample `u`'s satisfaction with the full database.
    #[inline]
    pub fn best_value(&self, u: usize) -> f64 {
        self.best_value[u]
    }

    /// Restricts the matrix to the given point columns (in order),
    /// recomputing the per-row best over the restricted universe.
    ///
    /// Useful when an algorithm first reduces the database to its skyline:
    /// regret ratios must then still be measured against the *original*
    /// database, which is sound because the skyline always contains a best
    /// point for every monotone utility function.
    ///
    /// # Errors
    ///
    /// Returns an error if `columns` is empty, out of bounds, or the
    /// restriction makes some row all-zero.
    pub fn restrict_columns(&self, columns: &[usize]) -> Result<ScoreMatrix> {
        if columns.is_empty() {
            return Err(FamError::EmptyDataset);
        }
        for &c in columns {
            if c >= self.n_points {
                return Err(FamError::IndexOutOfBounds { index: c, len: self.n_points });
            }
        }
        let mut scores = Vec::with_capacity(self.n_samples * columns.len());
        for u in 0..self.n_samples {
            let row = self.row(u);
            for &c in columns {
                scores.push(row[c]);
            }
        }
        ScoreMatrix::from_flat_with_layout(
            scores,
            self.n_samples,
            columns.len(),
            Some(self.weights.clone()),
            self.columns.is_some(),
        )
    }
}

/// Cache-blocked transpose of a row-major `n_samples × n_points` buffer
/// into a point-major mirror, parallelized over bands of columns.
fn transpose(scores: &[f64], n_samples: usize, n_points: usize) -> Vec<f64> {
    const BLOCK: usize = 64;
    let mut columns = vec![0.0f64; scores.len()];
    let cols_per_chunk = (crate::par::CHUNK / n_samples.max(1)).max(BLOCK);
    crate::par::for_each_chunk_mut(&mut columns, cols_per_chunk * n_samples, |chunk, out| {
        let first_col = chunk * cols_per_chunk;
        let band = out.len() / n_samples;
        for u0 in (0..n_samples).step_by(BLOCK) {
            let u1 = (u0 + BLOCK).min(n_samples);
            for local in 0..band {
                let p = first_col + local;
                let col = &mut out[local * n_samples..(local + 1) * n_samples];
                for u in u0..u1 {
                    col[u] = scores[u * n_points + p];
                }
            }
        }
    });
    columns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::UniformLinear;
    use crate::utility::{LinearUtility, TableUtility};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table_i_matrix() -> ScoreMatrix {
        // Table I of the paper: 4 users x 4 hotels.
        ScoreMatrix::from_rows(
            vec![
                vec![0.9, 0.7, 0.2, 0.4],
                vec![0.6, 1.0, 0.5, 0.2],
                vec![0.2, 0.6, 0.3, 1.0],
                vec![0.1, 0.2, 1.0, 0.9],
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn table_i_best_points() {
        let m = table_i_matrix();
        assert_eq!(m.n_samples(), 4);
        assert_eq!(m.n_points(), 4);
        assert_eq!(m.best_index(0), 0); // Alex -> Holiday Inn
        assert_eq!(m.best_index(1), 1); // Jerry -> Shangri la
        assert_eq!(m.best_index(2), 3); // Tom -> Hilton
        assert_eq!(m.best_index(3), 2); // Sam -> Intercontinental
        assert_eq!(m.best_value(1), 1.0);
        assert!((m.weight(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_functions_scores_every_point() {
        let d = Dataset::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.6]]).unwrap();
        let fs: Vec<Arc<dyn UtilityFunction>> = vec![
            Arc::new(LinearUtility::new(vec![1.0, 0.0]).unwrap()),
            Arc::new(LinearUtility::new(vec![0.5, 0.5]).unwrap()),
        ];
        let m = ScoreMatrix::from_functions(&d, &fs, None).unwrap();
        assert_eq!(m.row(0), &[1.0, 0.0, 0.6]);
        assert_eq!(m.best_index(0), 0);
        assert_eq!(m.best_index(1), 2); // 0.6 beats 0.5
    }

    #[test]
    fn from_distribution_shape() {
        let d = Dataset::from_rows(vec![vec![0.2, 0.8], vec![0.9, 0.3]]).unwrap();
        let dist = UniformLinear::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ScoreMatrix::from_distribution(&d, &dist, 50, &mut rng).unwrap();
        assert_eq!(m.n_samples(), 50);
        assert_eq!(m.n_points(), 2);
        for u in 0..50 {
            assert!(m.best_value(u) > 0.0);
            assert!(m.best_value(u) >= m.score(u, 0));
            assert!(m.best_value(u) >= m.score(u, 1));
        }
    }

    #[test]
    fn rejects_degenerate_rows() {
        let r = ScoreMatrix::from_rows(vec![vec![0.0, 0.0]], None);
        assert!(matches!(r, Err(FamError::DegenerateUtility { sample: 0 })));
    }

    #[test]
    fn rejects_invalid_scores_and_shapes() {
        assert!(ScoreMatrix::from_rows(vec![], None).is_err());
        assert!(ScoreMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]], None).is_err());
        assert!(ScoreMatrix::from_rows(vec![vec![f64::NAN]], None).is_err());
        assert!(ScoreMatrix::from_rows(vec![vec![-1.0]], None).is_err());
        assert!(ScoreMatrix::from_flat(vec![1.0; 5], 2, 2, None).is_err());
    }

    #[test]
    fn weights_are_normalized() {
        let m = ScoreMatrix::from_rows(vec![vec![1.0, 0.5], vec![0.5, 1.0]], Some(vec![3.0, 1.0]))
            .unwrap();
        assert!((m.weight(0) - 0.75).abs() < 1e-12);
        assert!((m.weight(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weight_validation() {
        let rows = vec![vec![1.0], vec![1.0]];
        assert!(ScoreMatrix::from_rows(rows.clone(), Some(vec![1.0])).is_err());
        assert!(ScoreMatrix::from_rows(rows.clone(), Some(vec![-1.0, 2.0])).is_err());
        assert!(ScoreMatrix::from_rows(rows, Some(vec![0.0, 0.0])).is_err());
    }

    #[test]
    fn discrete_exact_uses_atom_probabilities() {
        let d = Dataset::from_rows(vec![vec![1.0], vec![0.5]]).unwrap();
        let f1: Arc<dyn UtilityFunction> = Arc::new(TableUtility::new(vec![1.0, 0.2]).unwrap());
        let f2: Arc<dyn UtilityFunction> = Arc::new(TableUtility::new(vec![0.1, 0.9]).unwrap());
        let dist = DiscreteDistribution::new(vec![(f1, 1.0), (f2, 3.0)], 1).unwrap();
        let m = ScoreMatrix::from_discrete_exact(&d, &dist).unwrap();
        assert_eq!(m.n_samples(), 2);
        assert!((m.weight(0) - 0.25).abs() < 1e-12);
        assert!((m.weight(1) - 0.75).abs() < 1e-12);
        assert_eq!(m.best_index(1), 1);
    }

    #[test]
    fn restrict_columns_recomputes_best() {
        let m = table_i_matrix();
        let r = m.restrict_columns(&[2, 3]).unwrap();
        assert_eq!(r.n_points(), 2);
        // Alex's best among {Intercontinental, Hilton} is Hilton (0.4).
        assert_eq!(r.best_index(0), 1);
        assert!((r.best_value(0) - 0.4).abs() < 1e-12);
        assert!(m.restrict_columns(&[]).is_err());
        assert!(m.restrict_columns(&[9]).is_err());
    }
}
