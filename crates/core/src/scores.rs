//! The sampled utility-score matrix.
//!
//! Every FAM algorithm in this workspace consumes utilities through a
//! [`ScoreMatrix`]: an `N × n` matrix whose entry `(u, p)` is the utility of
//! point `p` under sampled (or enumerated) utility function `u`. Building it
//! corresponds exactly to the paper's preprocessing step: sample `N` utility
//! functions from `Θ` (`O(nN)`) and find each user's best point in `D`
//! (`O(nN)`).
//!
//! # Dual layout
//!
//! The matrix is stored **sample-major** (row `u` is contiguous) *and*, by
//! default, mirrored **point-major** (column `p` contiguous) at roughly 2×
//! memory. The two layouts serve the two access patterns of the paper's
//! algorithms:
//!
//! * removal rescans (GREEDY-SHRINK, the evaluator's `rebuild`) stream a
//!   sample's **row**;
//! * addition scans (ADD-GREEDY, K-HIT, MRR-GREEDY) stream a candidate
//!   point's **column** — without the mirror each probe is a stride-`n`
//!   cache miss.
//!
//! Both layouts are reachable through [`ScoreSource::row_slice`] /
//! [`ScoreSource::column_slice`]; call [`ScoreMatrix::drop_column_mirror`]
//! to trade the addition-scan speedup back for memory (the compact
//! [`crate::linear_scores::LinearScores`] substrate never builds a
//! mirror). Construction and the per-row best-point pass run on all cores
//! when the default `parallel` feature is enabled; results are
//! bit-identical to the serial build (see [`crate::par`]).
//!
//! Both buffers carry *slack* so each axis can grow in place: rows are
//! laid out at `stride ≥ n_points` (point insertions fill the slack,
//! re-laying with doubled slack only when it runs out) and mirror columns
//! at `col_stride ≥ n_samples` (the sample-axis twin, used by progressive
//! sample appends). Scoring, validation, and the best-point pass go
//! through the cache-blocked kernels in [`crate::kernels`]; the full
//! memory-layout and performance model is documented in
//! `docs/PERFORMANCE.md`.

use std::sync::Arc;

use rand::RngCore;

use crate::dataset::Dataset;
use crate::distribution::{DiscreteDistribution, UtilityDistribution};
use crate::error::{FamError, Result};
use crate::utility::UtilityFunction;

/// Read access to sampled utility scores — the interface every FAM
/// algorithm evaluates through.
///
/// The canonical implementation is the materialized [`ScoreMatrix`]
/// (`O(nN)` space). [`crate::linear_scores::LinearScores`] trades space for
/// time per Section III-D-3 of the paper: `O(d(N+n))` storage with scores
/// recomputed on demand (a factor-`d` time overhead).
pub trait ScoreSource: Send + Sync {
    /// Number of utility samples `N`.
    fn n_samples(&self) -> usize;
    /// Number of database points `n`.
    fn n_points(&self) -> usize;
    /// Score of point `p` under sample `u`.
    fn score(&self, u: usize, p: usize) -> f64;
    /// Probability mass of sample `u` (sums to 1 over all samples).
    fn weight(&self, u: usize) -> f64;
    /// Index of sample `u`'s best point in the full database.
    fn best_index(&self, u: usize) -> usize;
    /// `sat(D, f_u)` — sample `u`'s best database score.
    fn best_value(&self, u: usize) -> f64;

    /// Contiguous slice of sample `u`'s scores over all points, when the
    /// substrate stores samples contiguously. Algorithms use this to turn
    /// per-element [`ScoreSource::score`] probes into streaming reads; the
    /// default (`None`) keeps recomputing substrates valid.
    fn row_slice(&self, u: usize) -> Option<&[f64]> {
        let _ = u;
        None
    }

    /// Contiguous slice of point `p`'s scores over all samples, when the
    /// substrate maintains a point-major layout (see
    /// [`ScoreMatrix::column`]). The default (`None`) signals that column
    /// access costs a stride-`n_points` walk.
    fn column_slice(&self, p: usize) -> Option<&[f64]> {
        let _ = p;
        None
    }

    /// Materializes a dense matrix restricted to the given point columns
    /// (in order), recomputing per-row bests over the restricted
    /// universe — the substrate-generic entry point behind candidate
    /// reduction (`fam-reduce`). [`ScoreMatrix`] overrides this with its
    /// row-streaming [`ScoreMatrix::restrict_columns`]; the default probes
    /// [`ScoreSource::score`] element-wise so recomputing substrates stay
    /// valid.
    ///
    /// # Errors
    ///
    /// Returns an error if `columns` is empty, out of bounds, or the
    /// restriction makes some row degenerate (no positive score).
    fn restricted(&self, columns: &[usize]) -> Result<ScoreMatrix> {
        if columns.is_empty() {
            return Err(FamError::EmptyDataset);
        }
        let n = self.n_points();
        for &c in columns {
            if c >= n {
                return Err(FamError::IndexOutOfBounds { index: c, len: n });
            }
        }
        let n_samples = self.n_samples();
        let mut scores = Vec::with_capacity(n_samples * columns.len());
        let mut weights = Vec::with_capacity(n_samples);
        let mut best_index = Vec::with_capacity(n_samples);
        let mut best_value = Vec::with_capacity(n_samples);
        for u in 0..n_samples {
            let start = scores.len();
            for &c in columns {
                scores.push(self.score(u, c));
            }
            // Weights pass through bit-for-bit (the trait contract already
            // has them summing to 1) — re-normalizing would perturb them
            // by an ULP and break reduced-objective bit-identity.
            weights.push(self.weight(u));
            let (bi, bv) = row_best_checked(&scores[start..], u)?;
            best_index.push(bi);
            best_value.push(bv);
        }
        Ok(ScoreMatrix::assemble(
            scores,
            n_samples,
            columns.len(),
            weights,
            true,
            best_index,
            best_value,
        ))
    }
}

impl ScoreSource for ScoreMatrix {
    #[inline]
    fn n_samples(&self) -> usize {
        ScoreMatrix::n_samples(self)
    }

    #[inline]
    fn n_points(&self) -> usize {
        ScoreMatrix::n_points(self)
    }

    #[inline]
    fn score(&self, u: usize, p: usize) -> f64 {
        ScoreMatrix::score(self, u, p)
    }

    #[inline]
    fn weight(&self, u: usize) -> f64 {
        ScoreMatrix::weight(self, u)
    }

    #[inline]
    fn best_index(&self, u: usize) -> usize {
        ScoreMatrix::best_index(self, u)
    }

    #[inline]
    fn best_value(&self, u: usize) -> f64 {
        ScoreMatrix::best_value(self, u)
    }

    #[inline]
    fn row_slice(&self, u: usize) -> Option<&[f64]> {
        Some(ScoreMatrix::row(self, u))
    }

    #[inline]
    fn column_slice(&self, p: usize) -> Option<&[f64]> {
        ScoreMatrix::column(self, p)
    }

    fn restricted(&self, columns: &[usize]) -> Result<ScoreMatrix> {
        ScoreMatrix::restrict_columns(self, columns)
    }
}

/// An `N × n` matrix of utility scores with per-row probability weights.
///
/// Row `u` holds the utility of every database point under utility function
/// `u`; `weight(u)` is the probability mass of that function (uniform `1/N`
/// for i.i.d. samples, the exact atom probability for countable `F`). The
/// per-row best point over the full database — `sat(D, f)` and its argmax —
/// is precomputed at construction.
///
/// Construction validates every entry (finite, non-negative) and rejects
/// all-zero rows, so consumers may divide by [`ScoreMatrix::best_value`]
/// unconditionally: `0 < best_value(u) ≤ f64::MAX` and
/// `score(u, p) ≤ best_value(u)` hold for every stored entry.
///
/// ```
/// use fam_core::{ScoreMatrix, ScoreSource};
///
/// let m = ScoreMatrix::from_rows(
///     vec![vec![0.9, 0.7, 0.2], vec![0.6, 1.0, 0.5]],
///     None, // uniform weights
/// )?;
/// assert_eq!((m.n_samples(), m.n_points()), (2, 3));
/// assert_eq!((m.best_index(1), m.best_value(1)), (1, 1.0));
/// assert_eq!(m.row(0), &[0.9, 0.7, 0.2]); // sample-major
/// assert_eq!(m.column(1).unwrap(), &[0.7, 1.0]); // point-major mirror
/// assert_eq!(m.weight(0), 0.5);
/// # Ok::<(), fam_core::FamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScoreMatrix {
    /// Sample-major buffer with row stride `stride >= n_points`: row `u`
    /// occupies `scores[u * stride .. u * stride + n_points]`; the tail of
    /// each row is slack left by deletions (or reserved by insertions) so
    /// dynamic updates stay `O(batch)` per row instead of re-laying the
    /// whole buffer.
    scores: Vec<f64>,
    /// Point-major mirror: `columns[p * col_stride + u] == score(u, p)`.
    /// Built at construction unless opted out; costs ~2× memory and buys
    /// contiguous column access for addition scans.
    columns: Option<Vec<f64>>,
    n_samples: usize,
    n_points: usize,
    /// Physical row width of `scores` (== `n_points` until a dynamic
    /// update leaves slack).
    stride: usize,
    /// Physical column height of the mirror (== `n_samples` until a
    /// sample append leaves slack) — the sample-axis twin of `stride`:
    /// appended samples write into the tail of each mirror column, and
    /// the mirror is only re-laid (with doubled slack) when the capacity
    /// runs out.
    col_stride: usize,
    weights: Vec<f64>,
    best_index: Vec<u32>,
    best_value: Vec<f64>,
}

/// Per-sample summary of what a tiled reduced build
/// ([`ScoreMatrix::from_distribution_tiled`]) left behind: how far the
/// kept universe's best satisfaction falls short of the full database's,
/// aggregated over samples. A skyline `keep` yields exactly `0.0`
/// shortfall (the skyline contains a best point for every monotone
/// utility); a coreset's shortfall is the regret actually introduced by
/// reduction, to be compared against its declared `ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiledBuildStats {
    /// Points in the full (streamed) dataset.
    pub source_points: usize,
    /// Points kept — the built matrix's column count.
    pub kept_points: usize,
    /// Largest per-sample relative shortfall
    /// `(sat(D, f) − sat(kept, f)) / sat(D, f)`.
    pub max_shortfall: f64,
    /// Mean per-sample relative shortfall (uniform over samples).
    pub mean_shortfall: f64,
}

impl ScoreMatrix {
    /// Builds the matrix by sampling `n_samples` utility functions from
    /// `dist` and scoring every point of `dataset`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n_samples == 0`, a sampled function produces a
    /// non-finite or negative score, or some function scores every point 0
    /// (regret ratio undefined).
    pub fn from_distribution(
        dataset: &Dataset,
        dist: &dyn UtilityDistribution,
        n_samples: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self> {
        if n_samples == 0 {
            return Err(FamError::InvalidParameter {
                name: "n_samples",
                message: "must be at least 1".into(),
            });
        }
        crate::sampling::check_matrix_budget(n_samples, dataset.len())?;
        let functions: Vec<Arc<dyn UtilityFunction>> =
            (0..n_samples).map(|_| dist.sample(rng)).collect();
        Self::from_functions(dataset, &functions, None)
    }

    /// Builds the matrix from explicit utility functions with optional
    /// probability weights (normalized; uniform when `None`).
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as
    /// [`ScoreMatrix::from_distribution`], or if `weights` has the wrong
    /// length or invalid values.
    pub fn from_functions(
        dataset: &Dataset,
        functions: &[Arc<dyn UtilityFunction>],
        weights: Option<Vec<f64>>,
    ) -> Result<Self> {
        if functions.is_empty() {
            return Err(FamError::InvalidParameter {
                name: "functions",
                message: "must supply at least one utility function".into(),
            });
        }
        let n_points = dataset.len();
        let n_samples = functions.len();
        let weights = normalize_weights(weights, n_samples)?;
        // Score samples in parallel: each worker fills a disjoint block of
        // whole rows, so the buffer is identical for any thread count.
        // Scoring, validation, and the per-row best-point pass are fused —
        // each row is summarized while it is still cache-hot instead of
        // being re-read by two later whole-buffer passes. Linear utilities
        // take the batch kernel (bit-identical to calling `utility` per
        // element, see `UtilityFunction::linear_weights`); everything else
        // scores through the trait object and validates with the same
        // fused kernel.
        let mut scores = vec![0.0f64; n_samples * n_points];
        let rows_per_chunk = (crate::par::CHUNK / n_points.max(1)).max(1);
        let flat = dataset.as_flat();
        let dim = dataset.dim();
        let per_chunk = crate::par::for_each_chunk_mut_map(
            &mut scores,
            rows_per_chunk * n_points,
            |chunk, out| {
                let first_row = chunk * rows_per_chunk;
                out.chunks_mut(n_points)
                    .enumerate()
                    .map(|(local, row)| {
                        let u = first_row + local;
                        let f = &functions[u];
                        match f.linear_weights() {
                            Some(w) if w.len() == dim => {
                                let (bi, bv, ok) =
                                    crate::kernels::linear_score_row(w, flat, dim, row);
                                if !ok {
                                    row_best_checked(row, u)
                                } else if bv <= 0.0 {
                                    Err(FamError::DegenerateUtility { sample: u })
                                } else {
                                    Ok((bi, bv))
                                }
                            }
                            _ => {
                                for (idx, p) in dataset.points().enumerate() {
                                    row[idx] = f.utility(idx, p);
                                }
                                row_best_checked(row, u)
                            }
                        }
                    })
                    .collect::<Result<Vec<_>>>()
            },
        );
        let (best_index, best_value) = merge_row_bests(per_chunk, n_samples)?;
        Ok(Self::assemble(scores, n_samples, n_points, weights, true, best_index, best_value))
    }

    /// Builds a matrix over the `keep` subset of `dataset`'s points by
    /// sampling `n_samples` functions from `dist`, streaming the **full**
    /// dataset in point bands so the dense `N × n` matrix is never
    /// resident — only the `N × keep.len()` result is allocated, and the
    /// [`crate::sampling::check_matrix_budget`] guard is applied to that
    /// reduced footprint. This is what lets candidate reduction
    /// (`fam-reduce`) put `n = 10^6`-point datasets in front of solvers
    /// whose dense build would blow `FAM_MAX_MATRIX_BYTES`.
    ///
    /// The sample stream is identical to [`ScoreMatrix::from_distribution`]
    /// (`dist.sample(rng)` per sample, in order), and the produced matrix
    /// is **bit-identical** to `from_distribution(&dataset.subset(keep)?,
    /// dist, n_samples, rng)` for coordinate-based utilities — pinned by
    /// tests. The returned [`TiledBuildStats`] additionally report, per
    /// sample, how far the kept universe's best falls short of the full
    /// database's best (exactly `0.0` when `keep` is a skyline).
    ///
    /// Index-dependent utilities ([`crate::TableUtility`]) are not
    /// supported here: the streaming pass scores points by coordinates
    /// under their *original* index; materialize
    /// [`Dataset::subset`] and use [`ScoreMatrix::from_functions`]
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns an error when `n_samples == 0`, `keep` is empty /
    /// out of bounds / not strictly ascending, the reduced footprint
    /// exceeds the matrix budget, or a sampled function is degenerate on
    /// the kept universe.
    pub fn from_distribution_tiled(
        dataset: &Dataset,
        dist: &dyn UtilityDistribution,
        n_samples: usize,
        rng: &mut dyn RngCore,
        keep: &[usize],
    ) -> Result<(Self, TiledBuildStats)> {
        if n_samples == 0 {
            return Err(FamError::InvalidParameter {
                name: "n_samples",
                message: "must be at least 1".into(),
            });
        }
        crate::sampling::check_matrix_budget(n_samples, keep.len())?;
        let functions: Vec<Arc<dyn UtilityFunction>> =
            (0..n_samples).map(|_| dist.sample(rng)).collect();
        Self::from_functions_tiled(dataset, &functions, None, keep)
    }

    /// [`ScoreMatrix::from_distribution_tiled`] with explicit utility
    /// functions and optional weights; see there for the contract.
    ///
    /// # Errors
    ///
    /// See [`ScoreMatrix::from_distribution_tiled`].
    pub fn from_functions_tiled(
        dataset: &Dataset,
        functions: &[Arc<dyn UtilityFunction>],
        weights: Option<Vec<f64>>,
        keep: &[usize],
    ) -> Result<(Self, TiledBuildStats)> {
        if functions.is_empty() {
            return Err(FamError::InvalidParameter {
                name: "functions",
                message: "must supply at least one utility function".into(),
            });
        }
        if keep.is_empty() {
            return Err(FamError::EmptyDataset);
        }
        let full_n = dataset.len();
        for (i, &c) in keep.iter().enumerate() {
            if c >= full_n {
                return Err(FamError::IndexOutOfBounds { index: c, len: full_n });
            }
            if i > 0 && keep[i - 1] >= c {
                return Err(FamError::InvalidParameter {
                    name: "keep",
                    message: "kept indices must be strictly ascending".into(),
                });
            }
        }
        let n_points = keep.len();
        let n_samples = functions.len();
        let weights = normalize_weights(weights, n_samples)?;
        let flat = dataset.as_flat();
        let dim = dataset.dim();
        // One band of full-dataset scores per worker: scored through the
        // same kernels as the dense build, summarized for the running
        // full-database best, and drained into the kept columns — so the
        // kept row is bit-equal to scoring the materialized subset, while
        // the working set stays `O(band)` per worker.
        let band_points = (crate::kernels::TILE * 8).min(full_n);
        let mut scores = vec![0.0f64; n_samples * n_points];
        let rows_per_chunk = (crate::par::CHUNK / n_points.max(1)).max(1);
        let per_chunk = crate::par::for_each_chunk_mut_map(
            &mut scores,
            rows_per_chunk * n_points,
            |chunk, out| {
                let first_row = chunk * rows_per_chunk;
                let mut band = vec![0.0f64; band_points];
                out.chunks_mut(n_points)
                    .enumerate()
                    .map(|(local, row)| {
                        let u = first_row + local;
                        let f = &functions[u];
                        let linear = match f.linear_weights() {
                            Some(w) if w.len() == dim => Some(w),
                            _ => None,
                        };
                        let mut full_best = f64::NEG_INFINITY;
                        let mut cursor = 0usize;
                        let mut b0 = 0usize;
                        while b0 < full_n {
                            let b1 = (b0 + band_points).min(full_n);
                            let scratch = &mut band[..b1 - b0];
                            match linear {
                                Some(w) => {
                                    let (_, bv, _) = crate::kernels::linear_score_row(
                                        w,
                                        &flat[b0 * dim..b1 * dim],
                                        dim,
                                        scratch,
                                    );
                                    if bv > full_best {
                                        full_best = bv;
                                    }
                                }
                                None => {
                                    for (i, p) in (b0..b1).enumerate() {
                                        scratch[i] = f.utility(p, dataset.point(p));
                                    }
                                    full_best =
                                        crate::kernels::lane_max(full_best, scratch.len(), |i| {
                                            scratch[i]
                                        });
                                }
                            }
                            while cursor < n_points && keep[cursor] < b1 {
                                row[cursor] = scratch[keep[cursor] - b0];
                                cursor += 1;
                            }
                            b0 = b1;
                        }
                        // The kept row's best goes through the same checked
                        // pass as the dense build on the subset, so errors
                        // and (index, value) bits agree with it exactly.
                        row_best_checked(row, u).map(|best| (best, full_best))
                    })
                    .collect::<Result<Vec<_>>>()
            },
        );
        let mut best_index = Vec::with_capacity(n_samples);
        let mut best_value = Vec::with_capacity(n_samples);
        let mut shortfall = Vec::with_capacity(n_samples);
        for chunk in per_chunk {
            for ((bi, bv), full_bv) in chunk? {
                shortfall.push(if full_bv > bv { (full_bv - bv) / full_bv } else { 0.0 });
                best_index.push(bi);
                best_value.push(bv);
            }
        }
        let stats = TiledBuildStats {
            source_points: full_n,
            kept_points: n_points,
            max_shortfall: crate::kernels::lane_max(0.0, shortfall.len(), |u| shortfall[u]),
            mean_shortfall: crate::kernels::lane_sum(shortfall.len(), |u| shortfall[u])
                / n_samples as f64,
        };
        let m = Self::assemble(scores, n_samples, n_points, weights, true, best_index, best_value);
        Ok((m, stats))
    }

    /// Builds the matrix by exact enumeration of a countable distribution
    /// (Appendix A) — no sampling error.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as
    /// [`ScoreMatrix::from_functions`].
    pub fn from_discrete_exact(dataset: &Dataset, dist: &DiscreteDistribution) -> Result<Self> {
        Self::from_functions(dataset, dist.functions(), Some(dist.probabilities().to_vec()))
    }

    /// Builds the matrix from raw per-user score rows (the Table I format).
    ///
    /// # Errors
    ///
    /// Returns an error if rows are empty/ragged, scores are invalid, or a
    /// row has no positive score.
    pub fn from_rows(rows: Vec<Vec<f64>>, weights: Option<Vec<f64>>) -> Result<Self> {
        let n_points = rows.first().map(|r| r.len()).ok_or(FamError::EmptyDataset)?;
        let n_samples = rows.len();
        let mut scores = Vec::with_capacity(n_samples * n_points);
        for row in &rows {
            if row.len() != n_points {
                return Err(FamError::DimensionMismatch { expected: n_points, got: row.len() });
            }
            scores.extend_from_slice(row);
        }
        Self::from_flat(scores, n_samples, n_points, weights)
    }

    /// Builds from a flat row-major buffer (`n_samples` rows of `n_points`),
    /// constructing the point-major mirror.
    ///
    /// # Errors
    ///
    /// See [`ScoreMatrix::from_rows`].
    pub fn from_flat(
        scores: Vec<f64>,
        n_samples: usize,
        n_points: usize,
        weights: Option<Vec<f64>>,
    ) -> Result<Self> {
        Self::from_flat_with_layout(scores, n_samples, n_points, weights, true)
    }

    /// Builds from a flat row-major buffer, choosing whether to construct
    /// the point-major mirror (`mirror = false` halves memory but makes
    /// [`ScoreMatrix::column`] return `None`).
    ///
    /// # Errors
    ///
    /// See [`ScoreMatrix::from_rows`].
    pub fn from_flat_with_layout(
        scores: Vec<f64>,
        n_samples: usize,
        n_points: usize,
        weights: Option<Vec<f64>>,
        mirror: bool,
    ) -> Result<Self> {
        if n_points == 0 {
            return Err(FamError::EmptyDataset);
        }
        if n_samples == 0 || scores.len() != n_samples * n_points {
            return Err(FamError::DimensionMismatch {
                expected: n_samples * n_points,
                got: scores.len(),
            });
        }
        let weights = normalize_weights(weights, n_samples)?;
        // Validation and the per-row best-point pass (the paper's
        // preprocessing) run fused, one parallel chunk of rows at a time:
        // chunks merge in order, so the first offending *row* wins, with
        // element order deciding within a row — the same error a serial
        // row-by-row scan reports.
        let rows_per_chunk = (crate::par::CHUNK / n_points.max(1)).max(1);
        let per_chunk = crate::par::map_chunks(n_samples, rows_per_chunk, |rows| {
            rows.map(|u| row_best_checked(&scores[u * n_points..(u + 1) * n_points], u))
                .collect::<Result<Vec<_>>>()
        });
        let (best_index, best_value) = merge_row_bests(per_chunk, n_samples)?;
        Ok(Self::assemble(scores, n_samples, n_points, weights, mirror, best_index, best_value))
    }

    /// Final assembly once scores, normalized weights, and per-row bests
    /// are known: optionally builds the point-major mirror and packs the
    /// struct with tight strides.
    fn assemble(
        scores: Vec<f64>,
        n_samples: usize,
        n_points: usize,
        weights: Vec<f64>,
        mirror: bool,
        best_index: Vec<u32>,
        best_value: Vec<f64>,
    ) -> Self {
        let columns =
            mirror.then(|| crate::kernels::transpose(&scores, n_samples, n_points, n_points));
        ScoreMatrix {
            scores,
            columns,
            n_samples,
            n_points,
            stride: n_points,
            col_stride: n_samples,
            weights,
            best_index,
            best_value,
        }
    }

    /// Number of utility samples `N`.
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of database points `n`.
    #[inline]
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Score of point `p` under sample `u`.
    #[inline]
    pub fn score(&self, u: usize, p: usize) -> f64 {
        self.scores[u * self.stride + p]
    }

    /// Full score row of sample `u`.
    #[inline]
    pub fn row(&self, u: usize) -> &[f64] {
        &self.scores[u * self.stride..u * self.stride + self.n_points]
    }

    /// Contiguous score column of point `p` (one entry per sample), when
    /// the point-major mirror is present.
    #[inline]
    pub fn column(&self, p: usize) -> Option<&[f64]> {
        self.columns
            .as_deref()
            .map(|c| &c[p * self.col_stride..p * self.col_stride + self.n_samples])
    }

    /// Whether the point-major mirror is present.
    #[inline]
    pub fn has_column_mirror(&self) -> bool {
        self.columns.is_some()
    }

    /// Drops the point-major mirror, halving memory; column access falls
    /// back to strided row probes. Used by benchmarks to A/B the layouts.
    #[must_use]
    pub fn drop_column_mirror(mut self) -> Self {
        self.columns = None;
        self
    }

    /// Clone that skips the point-major mirror — the cheap way to obtain a
    /// row-major-only copy for layout A/B comparisons (a full `clone()`
    /// would deep-copy the mirror just to throw it away).
    #[must_use]
    pub fn clone_without_mirror(&self) -> Self {
        ScoreMatrix {
            scores: self.scores.clone(),
            columns: None,
            n_samples: self.n_samples,
            n_points: self.n_points,
            stride: self.stride,
            col_stride: self.col_stride,
            weights: self.weights.clone(),
            best_index: self.best_index.clone(),
            best_value: self.best_value.clone(),
        }
    }

    /// (Re)builds the point-major mirror if absent.
    pub fn build_column_mirror(&mut self) {
        if self.columns.is_none() {
            self.columns = Some(crate::kernels::transpose(
                &self.scores,
                self.n_samples,
                self.n_points,
                self.stride,
            ));
            self.col_stride = self.n_samples;
        }
    }

    /// Probability mass of sample `u` (weights sum to 1 over all samples).
    #[inline]
    pub fn weight(&self, u: usize) -> f64 {
        self.weights[u]
    }

    /// All probability weights.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Index of sample `u`'s best point in the full database.
    #[inline]
    pub fn best_index(&self, u: usize) -> usize {
        self.best_index[u] as usize
    }

    /// `sat(D, f_u)` — sample `u`'s satisfaction with the full database.
    #[inline]
    pub fn best_value(&self, u: usize) -> f64 {
        self.best_value[u]
    }

    /// Validates candidate point columns for [`ScoreMatrix::insert_points`]
    /// without mutating the matrix: each column must hold exactly
    /// `n_samples` finite, non-negative scores.
    ///
    /// Callers that batch a deletion and an insertion together (see
    /// `DynamicEngine`) use this to reject the whole batch up front so a
    /// failed insertion can never leave a half-applied update.
    ///
    /// # Errors
    ///
    /// Returns the same errors [`ScoreMatrix::insert_points`] would.
    pub fn validate_new_points(&self, cols: &[Vec<f64>]) -> Result<()> {
        for (j, col) in cols.iter().enumerate() {
            if col.len() != self.n_samples {
                return Err(FamError::DimensionMismatch {
                    expected: self.n_samples,
                    got: col.len(),
                });
            }
            for (u, &v) in col.iter().enumerate() {
                if !v.is_finite() {
                    return Err(FamError::NonFinite { row: u, col: self.n_points + j });
                }
                if v < 0.0 {
                    return Err(FamError::NegativeValue { row: u, col: self.n_points + j });
                }
            }
        }
        Ok(())
    }

    /// Appends new points **in place**: each element of `cols` is one
    /// point's score column (`n_samples` entries, sample order). The new
    /// points take indices `n_points..n_points + cols.len()`.
    ///
    /// Both layouts are patched without a rebuild. Each sample row writes
    /// the new entries into its slack (`O(cols)` per row — the buffer is
    /// only re-laid, with doubled slack, when capacity runs out), and the
    /// point-major mirror (when present) simply extends, since mirror
    /// columns are contiguous per point. Per-sample best tracking updates
    /// by comparing only the new columns. Every observable value —
    /// [`ScoreMatrix::row`], [`ScoreMatrix::column`], best tracking — is
    /// **bit-identical** to [`ScoreMatrix::from_flat_with_layout`] on the
    /// equivalently extended buffer: appended points sit after the
    /// existing ones, so the strict first-argmax scan agrees entry for
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns an error if a column has the wrong length or contains
    /// non-finite or negative scores; the matrix is left untouched.
    pub fn insert_points(&mut self, cols: &[Vec<f64>]) -> Result<()> {
        self.validate_new_points(cols)?;
        self.insert_points_prevalidated(cols);
        Ok(())
    }

    /// [`ScoreMatrix::insert_points`] minus the validation scan, for
    /// callers that already ran [`ScoreMatrix::validate_new_points`] on
    /// the same columns (`DynamicEngine` validates the whole batch up
    /// front for atomicity and must not pay the `O(cols · n_samples)`
    /// check twice).
    pub(crate) fn insert_points_prevalidated(&mut self, cols: &[Vec<f64>]) {
        if cols.is_empty() {
            return;
        }
        let n_old = self.n_points;
        let n_new = n_old + cols.len();
        if n_new <= self.stride {
            // In-place fast path: fill each row's slack.
            let (stride, rows_per_chunk) = self.row_chunking();
            crate::par::for_each_chunk_mut(
                &mut self.scores,
                rows_per_chunk * stride,
                |chunk, out| {
                    let first_row = chunk * rows_per_chunk;
                    for (local, row) in out.chunks_mut(stride).enumerate() {
                        let u = first_row + local;
                        for (j, col) in cols.iter().enumerate() {
                            row[n_old + j] = col[u];
                        }
                    }
                },
            );
        } else {
            // Amortized growth: one re-lay with doubled slack, so a steady
            // insert stream pays O(1) re-lays per point overall.
            let stride_new = n_new.max(self.stride.saturating_mul(2));
            let mut scores = vec![0.0f64; self.n_samples * stride_new];
            let old = &self.scores;
            let stride_old = self.stride;
            let rows_per_chunk = (crate::par::CHUNK / stride_new.max(1)).max(1);
            crate::par::for_each_chunk_mut(
                &mut scores,
                rows_per_chunk * stride_new,
                |chunk, out| {
                    let first_row = chunk * rows_per_chunk;
                    for (local, row) in out.chunks_mut(stride_new).enumerate() {
                        let u = first_row + local;
                        row[..n_old].copy_from_slice(&old[u * stride_old..u * stride_old + n_old]);
                        for (j, col) in cols.iter().enumerate() {
                            row[n_old + j] = col[u];
                        }
                    }
                },
            );
            self.scores = scores;
            self.stride = stride_new;
        }
        for (u, (bi, bv)) in self.best_index.iter_mut().zip(&mut self.best_value).enumerate() {
            for (j, col) in cols.iter().enumerate() {
                if col[u] > *bv {
                    *bi = (n_old + j) as u32;
                    *bv = col[u];
                }
            }
        }
        if let Some(columns) = &mut self.columns {
            columns.reserve(cols.len() * self.col_stride);
            for col in cols {
                columns.extend_from_slice(col);
                // Honor the mirror's physical column height: the tail of
                // each column is sample-axis slack.
                columns.resize(columns.len() + (self.col_stride - self.n_samples), 0.0);
            }
        }
        self.n_points = n_new;
    }

    /// Deletes the given point columns **in place** with swap-remove
    /// semantics: freed slots are processed in descending index order and
    /// each is filled by the then-last point, so every row (and mirror
    /// column) moves only `O(delete.len())` entries — no buffer re-lay.
    /// Returns the index remap: `remap[old] == Some(new)` for survivors,
    /// `None` for deleted points. (Like [`Vec::swap_remove`], surviving
    /// indices are *not* order-preserving; consult the remap.)
    ///
    /// Per-sample best tracking is repaired incrementally: only the
    /// samples whose best point died rescan their row (in the post-swap
    /// point order, so the strict first-argmax agrees with
    /// [`ScoreMatrix::from_flat_with_layout`] on the equivalently
    /// reordered buffer); every other sample keeps its best value and
    /// remaps the index, additionally probing the few swap-moved slots
    /// for a bit-equal tie that now precedes it — the recorded best is
    /// the first *strict* maximum, so unmoved earlier points are strictly
    /// smaller and only a relocated duplicate can steal the first-argmax
    /// position.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving the matrix untouched) if an index is out
    /// of bounds or duplicated, if the deletion would remove every point,
    /// or if some sample would be left with no positive score
    /// ([`FamError::DegenerateUtility`]).
    pub fn delete_points(&mut self, delete: &[usize]) -> Result<Vec<Option<u32>>> {
        if delete.is_empty() {
            return Ok((0..self.n_points).map(|p| Some(p as u32)).collect());
        }
        let n_old = self.n_points;
        let mut dead = vec![false; n_old];
        for &p in delete {
            if p >= n_old {
                return Err(FamError::IndexOutOfBounds { index: p, len: n_old });
            }
            if dead[p] {
                return Err(FamError::InvalidParameter {
                    name: "delete",
                    message: format!("duplicate point index {p}"),
                });
            }
            dead[p] = true;
        }
        let n_new = n_old - delete.len();
        if n_new == 0 {
            return Err(FamError::EmptyDataset);
        }
        // Canonical swap order: `order[slot]` is the original point that
        // ends up in `slot` after all swaps.
        let mut dels: Vec<usize> = delete.to_vec();
        dels.sort_unstable();
        let mut order: Vec<u32> = (0..n_old as u32).collect();
        for &d in dels.iter().rev() {
            order.swap_remove(d);
        }
        let mut remap: Vec<Option<u32>> = vec![None; n_old];
        for (slot, &p) in order.iter().enumerate() {
            remap[p as usize] = Some(slot as u32);
        }
        // Slots whose occupant changed (freed slots refilled by tail
        // points), ascending: the only places a bit-equal duplicate of a
        // surviving best can move in front of it.
        let moved: Vec<u32> = dels
            .iter()
            .filter(|&&d| d < n_new && order[d] as usize != d)
            .map(|&d| d as u32)
            .collect();
        // Repair best tracking *before* mutating anything: rescan only
        // the samples whose best point died, reading the untouched rows
        // through the post-swap point order (errors leave the matrix
        // untouched).
        let (order_ref, remap_ref, moved_ref, stride) = (&order, &remap, &moved, self.stride);
        let (scores_ref, best_index_ref, best_value_ref) =
            (&self.scores, &self.best_index, &self.best_value);
        let per_row = crate::par::map_chunks(self.n_samples, crate::par::CHUNK, |rows| {
            rows.map(|u| match remap_ref[best_index_ref[u] as usize] {
                Some(nb) => {
                    let bv = best_value_ref[u];
                    let row = &scores_ref[u * stride..u * stride + n_old];
                    // First argmax in post-swap order: a relocated point
                    // tying the best bit-for-bit at an earlier slot wins.
                    let mut slot = nb;
                    for &m in moved_ref {
                        if m >= slot {
                            break;
                        }
                        if row[order_ref[m as usize] as usize] == bv {
                            slot = m;
                            break;
                        }
                    }
                    Ok((slot, bv))
                }
                None => {
                    let row = &scores_ref[u * stride..u * stride + n_old];
                    let (mut bi, mut bv) = (0usize, row[order_ref[0] as usize]);
                    for (slot, &p) in order_ref.iter().enumerate().skip(1) {
                        let v = row[p as usize];
                        if v > bv {
                            bi = slot;
                            bv = v;
                        }
                    }
                    if bv <= 0.0 {
                        return Err(FamError::DegenerateUtility { sample: u });
                    }
                    Ok((bi as u32, bv))
                }
            })
            .collect::<Result<Vec<_>>>()
        });
        let mut best_index = Vec::with_capacity(self.n_samples);
        let mut best_value = Vec::with_capacity(self.n_samples);
        for chunk in per_row {
            for (bi, bv) in chunk? {
                best_index.push(bi);
                best_value.push(bv);
            }
        }
        // Apply the swaps to every row in place: O(|delete|) per row.
        let (stride, rows_per_chunk) = self.row_chunking();
        let dels_ref = &dels;
        crate::par::for_each_chunk_mut(&mut self.scores, rows_per_chunk * stride, |_, out| {
            for row in out.chunks_mut(stride) {
                let mut len = n_old;
                for &d in dels_ref.iter().rev() {
                    len -= 1;
                    row[d] = row[len];
                }
            }
        });
        // Same swaps on the mirror's contiguous per-point columns.
        if let Some(c) = &mut self.columns {
            let cs = self.col_stride;
            let mut len = n_old;
            for &d in dels.iter().rev() {
                len -= 1;
                if d != len {
                    c.copy_within(len * cs..(len + 1) * cs, d * cs);
                }
            }
            c.truncate(n_new * cs);
        }
        self.n_points = n_new;
        self.best_index = best_index;
        self.best_value = best_value;
        Ok(remap)
    }

    /// Physical stride plus the row count per parallel chunk used by the
    /// in-place update kernels.
    fn row_chunking(&self) -> (usize, usize) {
        (self.stride, (crate::par::CHUNK / self.stride.max(1)).max(1))
    }

    /// Restricts the matrix to the given point columns (in order),
    /// recomputing the per-row best over the restricted universe.
    ///
    /// Useful when an algorithm first reduces the database to its skyline:
    /// regret ratios must then still be measured against the *original*
    /// database, which is sound because the skyline always contains a best
    /// point for every monotone utility function.
    ///
    /// # Errors
    ///
    /// Returns an error if `columns` is empty, out of bounds, or the
    /// restriction makes some row all-zero.
    pub fn restrict_columns(&self, columns: &[usize]) -> Result<ScoreMatrix> {
        if columns.is_empty() {
            return Err(FamError::EmptyDataset);
        }
        for &c in columns {
            if c >= self.n_points {
                return Err(FamError::IndexOutOfBounds { index: c, len: self.n_points });
            }
        }
        // Assemble directly instead of round-tripping through the
        // validating constructor: the rows are already validated, and the
        // constructor would re-normalize the weights — perturbing every
        // weight by an ULP when their fp sum is not exactly 1, which
        // would break the bit-identity of skyline-reduced objectives.
        let mut scores = Vec::with_capacity(self.n_samples * columns.len());
        let mut best_index = Vec::with_capacity(self.n_samples);
        let mut best_value = Vec::with_capacity(self.n_samples);
        for u in 0..self.n_samples {
            let row = self.row(u);
            let start = scores.len();
            for &c in columns {
                scores.push(row[c]);
            }
            let (bi, bv) = row_best_checked(&scores[start..], u)?;
            best_index.push(bi);
            best_value.push(bv);
        }
        Ok(Self::assemble(
            scores,
            self.n_samples,
            columns.len(),
            self.weights.clone(),
            self.columns.is_some(),
            best_index,
            best_value,
        ))
    }

    /// Pre-growth checks shared by every append entry point; cheap and
    /// side-effect free, so a rejected append leaves the matrix
    /// untouched.
    fn precheck_append(&self, count: usize) -> Result<()> {
        // Appending samples re-spreads the probability mass uniformly
        // (each sample is one i.i.d. draw), which is only sound when the
        // resident mass is uniform too — exact discrete enumerations and
        // hand-weighted matrices must be rebuilt instead.
        let uniform = (1.0 / self.n_samples as f64).to_bits();
        if self.weights.iter().any(|w| w.to_bits() != uniform) {
            return Err(FamError::InvalidParameter {
                name: "weights",
                message: "append_samples requires uniform sample weights; \
                          rebuild weighted or exact-discrete matrices instead"
                    .into(),
            });
        }
        crate::sampling::check_matrix_budget(self.n_samples + count, self.n_points)
    }

    /// Validates the `count` rows sitting in the sample-major tail
    /// (starting at element offset `base`), returning each row's best
    /// point. One merged pass per row checks finiteness/sign, finds the
    /// strict first argmax (identical to the from-scratch best pass),
    /// and rejects degenerate rows; the first offending **row** wins,
    /// with in-row element order deciding within a row. Indices in
    /// errors name the concatenated sample stream.
    fn validate_appended(&self, base: usize, count: usize) -> Result<Vec<(u32, f64)>> {
        let n_points = self.n_points;
        let stride = self.stride;
        let n_old = self.n_samples;
        let tail = &self.scores[base..];
        let rows_per_chunk = (crate::par::CHUNK / n_points.max(1)).max(1);
        let per_row = crate::par::map_chunks(count, rows_per_chunk, |rows| {
            rows.map(|j| row_best_checked(&tail[j * stride..j * stride + n_points], n_old + j))
                .collect::<Result<Vec<_>>>()
        });
        let mut best = Vec::with_capacity(count);
        for chunk in per_row {
            best.extend(chunk?);
        }
        Ok(best)
    }

    /// Commits `count` rows already written into the sample-major tail:
    /// validate, then patch the mirror/weights/best tracking. On a
    /// validation error the tail truncates back and the matrix is
    /// untouched.
    fn commit_appended(&mut self, base: usize, count: usize) -> Result<()> {
        let best = match self.validate_appended(base, count) {
            Ok(best) => best,
            Err(e) => {
                self.scores.truncate(base);
                return Err(e);
            }
        };
        self.commit_appended_with(base, count, best);
        Ok(())
    }

    /// [`ScoreMatrix::commit_appended`] once the tail rows are already
    /// validated and summarized (the fused scoring paths produce `best`
    /// in the same pass that writes the rows).
    fn commit_appended_with(&mut self, base: usize, count: usize, best: Vec<(u32, f64)>) {
        let n_points = self.n_points;
        let n_old = self.n_samples;
        let n_new = n_old + count;
        // Mirror columns: transpose the new rows straight into the tail
        // slack of each column, or re-lay with doubled slack when the
        // column capacity runs out (one combined copy + transpose pass —
        // every stage here is memory-bandwidth bound, so no intermediate
        // buffers).
        let ScoreMatrix { scores, columns, col_stride, stride, .. } = self;
        if let Some(columns) = columns.as_mut() {
            let src = &scores[base..];
            let cs = *col_stride;
            if n_new <= cs {
                crate::kernels::transpose_into(src, count, *stride, columns, cs, n_old);
            } else {
                let cs_new = n_new.max(cs.saturating_mul(2));
                let mut grown = vec![0.0f64; n_points * cs_new];
                let old = &*columns;
                let stride = *stride;
                // Bands must stay at least TILE columns wide: a
                // one-column band degenerates the blocked transpose
                // into a cache-miss-per-element gather.
                let cols_per_chunk = (crate::par::CHUNK / cs_new.max(1)).max(crate::kernels::TILE);
                crate::par::for_each_chunk_mut(
                    &mut grown,
                    cols_per_chunk * cs_new,
                    |chunk, out| {
                        let first_col = chunk * cols_per_chunk;
                        let band = out.len() / cs_new;
                        for local in 0..band {
                            let p = first_col + local;
                            out[local * cs_new..local * cs_new + n_old]
                                .copy_from_slice(&old[p * cs..p * cs + n_old]);
                        }
                        crate::kernels::transpose_band(
                            src, count, stride, out, cs_new, n_old, first_col, band,
                        );
                    },
                );
                *columns = grown;
                *col_stride = cs_new;
            }
        }
        // Each sample is one i.i.d. draw: the mass re-spreads uniformly,
        // exactly as a from-scratch build with `weights = None` would.
        self.weights.clear();
        self.weights.resize(n_new, 1.0 / n_new as f64);
        for (bi, bv) in best {
            self.best_index.push(bi);
            self.best_value.push(bv);
        }
        self.n_samples = n_new;
    }

    /// Appends `count` new utility samples **in place** from a flat
    /// row-major block (`count` rows of `n_points` scores each) — the
    /// sample-axis twin of [`ScoreMatrix::insert_points`].
    ///
    /// Both layouts are patched without a rebuild: the sample-major
    /// buffer extends at the end (rows are contiguous, so growing the
    /// sample axis never re-lays it), and the point-major mirror (when
    /// present) transposes each new sample into its columns' tail slack
    /// — the buffer is only re-laid, with doubled slack, when the column
    /// capacity runs out, so a steady append stream pays `O(1)` re-lays
    /// per sample. Per-sample weights re-spread to `1/N` and best-point
    /// tracking extends with the new rows only. Every observable value —
    /// [`ScoreMatrix::row`], [`ScoreMatrix::column`], weights, best
    /// tracking — is **bit-identical** to a from-scratch
    /// [`ScoreMatrix::from_flat_with_layout`] over the concatenated
    /// sample stream.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving the matrix untouched) when the block
    /// has the wrong length, contains non-finite or negative scores, a
    /// new row has no positive score, the resident weights are not
    /// uniform, or the grown matrix would exceed the footprint budget
    /// ([`crate::sampling::check_matrix_budget`]).
    pub fn append_samples_flat(&mut self, flat: &[f64], count: usize) -> Result<()> {
        if flat.len() != count * self.n_points {
            return Err(FamError::DimensionMismatch {
                expected: count * self.n_points,
                got: flat.len(),
            });
        }
        self.precheck_append(count)?;
        if count == 0 {
            return Ok(());
        }
        let base = self.scores.len();
        if self.stride == self.n_points {
            self.scores.extend_from_slice(flat);
        } else {
            // A point update left per-row slack: place each new row at
            // its stride position.
            let (stride, rows_per_chunk) = self.row_chunking();
            let n_points = self.n_points;
            self.scores.resize(base + count * stride, 0.0);
            let tail = &mut self.scores[base..];
            crate::par::for_each_chunk_mut(tail, rows_per_chunk * stride, |chunk, out| {
                let first_row = chunk * rows_per_chunk;
                for (local, row) in out.chunks_mut(stride).enumerate() {
                    let j = first_row + local;
                    row[..n_points].copy_from_slice(&flat[j * n_points..(j + 1) * n_points]);
                }
            });
        }
        self.commit_appended(base, count)
    }

    /// Appends new utility samples given as one score row per sample
    /// (the Table I format). See [`ScoreMatrix::append_samples_flat`].
    ///
    /// # Errors
    ///
    /// As [`ScoreMatrix::append_samples_flat`]; a ragged row reports a
    /// [`FamError::DimensionMismatch`].
    pub fn append_sample_rows(&mut self, rows: &[Vec<f64>]) -> Result<()> {
        for row in rows {
            if row.len() != self.n_points {
                return Err(FamError::DimensionMismatch {
                    expected: self.n_points,
                    got: row.len(),
                });
            }
        }
        self.precheck_append(rows.len())?;
        if rows.is_empty() {
            return Ok(());
        }
        let base = self.scores.len();
        let stride = self.stride;
        self.scores.reserve(rows.len() * stride);
        for row in rows {
            self.scores.extend_from_slice(row);
            self.scores.resize(self.scores.len() + (stride - row.len()), 0.0);
        }
        self.commit_appended(base, rows.len())
    }

    /// Appends new utility samples by scoring every point of `dataset`
    /// under each function — the incremental twin of
    /// [`ScoreMatrix::from_functions`], scoring **directly into the
    /// grown buffer** (no staging copy). Callers that retain their
    /// sampled population (e.g. a serving layer that must score future
    /// point inserts under the same users) sample the functions
    /// themselves and go through here; [`ScoreMatrix::append_samples`]
    /// is the fire-and-forget wrapper.
    ///
    /// # Errors
    ///
    /// As [`ScoreMatrix::append_samples_flat`]; a dataset over a
    /// different point universe reports a [`FamError::DimensionMismatch`].
    pub fn append_functions(
        &mut self,
        dataset: &Dataset,
        functions: &[Arc<dyn UtilityFunction>],
    ) -> Result<()> {
        if dataset.len() != self.n_points {
            return Err(FamError::DimensionMismatch {
                expected: self.n_points,
                got: dataset.len(),
            });
        }
        self.precheck_append(functions.len())?;
        if functions.is_empty() {
            return Ok(());
        }
        let base = self.scores.len();
        let (stride, rows_per_chunk) = self.row_chunking();
        let n_points = self.n_points;
        let n_old = self.n_samples;
        self.scores.resize(base + functions.len() * stride, 0.0);
        // Score in parallel over whole rows with the same fused
        // score+validate+best pass as the from-scratch construction
        // (bit-identical for any thread count).
        let tail = &mut self.scores[base..];
        let flat = dataset.as_flat();
        let dim = dataset.dim();
        let per_chunk =
            crate::par::for_each_chunk_mut_map(tail, rows_per_chunk * stride, |chunk, out| {
                let first_row = chunk * rows_per_chunk;
                out.chunks_mut(stride)
                    .enumerate()
                    .map(|(local, padded)| {
                        let j = first_row + local;
                        let f = &functions[j];
                        let row = &mut padded[..n_points];
                        match f.linear_weights() {
                            Some(w) if w.len() == dim => {
                                let (bi, bv, ok) =
                                    crate::kernels::linear_score_row(w, flat, dim, row);
                                if !ok {
                                    row_best_checked(row, n_old + j)
                                } else if bv <= 0.0 {
                                    Err(FamError::DegenerateUtility { sample: n_old + j })
                                } else {
                                    Ok((bi, bv))
                                }
                            }
                            _ => {
                                for (idx, p) in dataset.points().enumerate() {
                                    row[idx] = f.utility(idx, p);
                                }
                                row_best_checked(row, n_old + j)
                            }
                        }
                    })
                    .collect::<Result<Vec<_>>>()
            });
        match merge_row_bests(per_chunk, functions.len()) {
            Ok((bi, bv)) => {
                let best = bi.into_iter().zip(bv).collect();
                self.commit_appended_with(base, functions.len(), best);
                Ok(())
            }
            Err(e) => {
                self.scores.truncate(base);
                Err(e)
            }
        }
    }

    /// Samples `count` fresh utility functions from `dist` and appends
    /// them — the incremental twin of [`ScoreMatrix::from_distribution`].
    /// Continuing the **same** RNG that built the matrix reproduces the
    /// from-scratch sample stream: `from_distribution(ds, dist, N₀, rng)`
    /// followed by `append_samples(ds, dist, N₁ − N₀, rng)` is
    /// bit-identical to `from_distribution(ds, dist, N₁, rng')` with a
    /// fresh RNG from the same seed.
    ///
    /// # Errors
    ///
    /// As [`ScoreMatrix::append_functions`].
    pub fn append_samples(
        &mut self,
        dataset: &Dataset,
        dist: &dyn UtilityDistribution,
        count: usize,
        rng: &mut dyn RngCore,
    ) -> Result<()> {
        let functions: Vec<Arc<dyn UtilityFunction>> =
            (0..count).map(|_| dist.sample(rng)).collect();
        self.append_functions(dataset, &functions)
    }
}

/// Normalizes optional per-sample probability weights: `None` yields the
/// uniform `1/N` vector, `Some` is validated (length, finiteness, sign,
/// positive total) and scaled to sum to 1.
fn normalize_weights(weights: Option<Vec<f64>>, n_samples: usize) -> Result<Vec<f64>> {
    match weights {
        Some(mut w) => {
            if w.len() != n_samples {
                return Err(FamError::InvalidWeights(format!(
                    "expected {n_samples} weights, got {}",
                    w.len()
                )));
            }
            if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(FamError::InvalidWeights(
                    "weights must be finite and non-negative".into(),
                ));
            }
            let total: f64 = w.iter().sum();
            if total <= 0.0 {
                return Err(FamError::InvalidWeights("weights sum to zero".into()));
            }
            w.iter_mut().for_each(|x| *x /= total);
            Ok(w)
        }
        None => Ok(vec![1.0 / n_samples as f64; n_samples]),
    }
}

/// One row of the fused validate+best construction pass: wraps
/// [`crate::kernels::validate_row_best`] with the matrix's row-indexed
/// error vocabulary and the degenerate-row (no positive score) check.
fn row_best_checked(row: &[f64], sample: usize) -> Result<(u32, f64)> {
    match crate::kernels::validate_row_best(row) {
        Ok((_, bv)) if bv <= 0.0 => Err(FamError::DegenerateUtility { sample }),
        Ok(best) => Ok(best),
        Err(crate::kernels::RowIssue::NonFinite { col }) => {
            Err(FamError::NonFinite { row: sample, col })
        }
        Err(crate::kernels::RowIssue::Negative { col }) => {
            Err(FamError::NegativeValue { row: sample, col })
        }
    }
}

/// Folds per-chunk row results (in chunk order, so the first offending
/// row's error wins) into the best-index / best-value columns.
fn merge_row_bests(
    per_chunk: Vec<Result<Vec<(u32, f64)>>>,
    n_samples: usize,
) -> Result<(Vec<u32>, Vec<f64>)> {
    let mut best_index = Vec::with_capacity(n_samples);
    let mut best_value = Vec::with_capacity(n_samples);
    for chunk in per_chunk {
        for (bi, bv) in chunk? {
            best_index.push(bi);
            best_value.push(bv);
        }
    }
    Ok((best_index, best_value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::UniformLinear;
    use crate::utility::{LinearUtility, TableUtility};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table_i_matrix() -> ScoreMatrix {
        // Table I of the paper: 4 users x 4 hotels.
        ScoreMatrix::from_rows(
            vec![
                vec![0.9, 0.7, 0.2, 0.4],
                vec![0.6, 1.0, 0.5, 0.2],
                vec![0.2, 0.6, 0.3, 1.0],
                vec![0.1, 0.2, 1.0, 0.9],
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn table_i_best_points() {
        let m = table_i_matrix();
        assert_eq!(m.n_samples(), 4);
        assert_eq!(m.n_points(), 4);
        assert_eq!(m.best_index(0), 0); // Alex -> Holiday Inn
        assert_eq!(m.best_index(1), 1); // Jerry -> Shangri la
        assert_eq!(m.best_index(2), 3); // Tom -> Hilton
        assert_eq!(m.best_index(3), 2); // Sam -> Intercontinental
        assert_eq!(m.best_value(1), 1.0);
        assert!((m.weight(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_functions_scores_every_point() {
        let d = Dataset::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.6]]).unwrap();
        let fs: Vec<Arc<dyn UtilityFunction>> = vec![
            Arc::new(LinearUtility::new(vec![1.0, 0.0]).unwrap()),
            Arc::new(LinearUtility::new(vec![0.5, 0.5]).unwrap()),
        ];
        let m = ScoreMatrix::from_functions(&d, &fs, None).unwrap();
        assert_eq!(m.row(0), &[1.0, 0.0, 0.6]);
        assert_eq!(m.best_index(0), 0);
        assert_eq!(m.best_index(1), 2); // 0.6 beats 0.5
    }

    #[test]
    fn from_distribution_shape() {
        let d = Dataset::from_rows(vec![vec![0.2, 0.8], vec![0.9, 0.3]]).unwrap();
        let dist = UniformLinear::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let m = ScoreMatrix::from_distribution(&d, &dist, 50, &mut rng).unwrap();
        assert_eq!(m.n_samples(), 50);
        assert_eq!(m.n_points(), 2);
        for u in 0..50 {
            assert!(m.best_value(u) > 0.0);
            assert!(m.best_value(u) >= m.score(u, 0));
            assert!(m.best_value(u) >= m.score(u, 1));
        }
    }

    #[test]
    fn rejects_degenerate_rows() {
        let r = ScoreMatrix::from_rows(vec![vec![0.0, 0.0]], None);
        assert!(matches!(r, Err(FamError::DegenerateUtility { sample: 0 })));
    }

    #[test]
    fn rejects_invalid_scores_and_shapes() {
        assert!(ScoreMatrix::from_rows(vec![], None).is_err());
        assert!(ScoreMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]], None).is_err());
        assert!(ScoreMatrix::from_rows(vec![vec![f64::NAN]], None).is_err());
        assert!(ScoreMatrix::from_rows(vec![vec![-1.0]], None).is_err());
        assert!(ScoreMatrix::from_flat(vec![1.0; 5], 2, 2, None).is_err());
    }

    #[test]
    fn weights_are_normalized() {
        let m = ScoreMatrix::from_rows(vec![vec![1.0, 0.5], vec![0.5, 1.0]], Some(vec![3.0, 1.0]))
            .unwrap();
        assert!((m.weight(0) - 0.75).abs() < 1e-12);
        assert!((m.weight(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weight_validation() {
        let rows = vec![vec![1.0], vec![1.0]];
        assert!(ScoreMatrix::from_rows(rows.clone(), Some(vec![1.0])).is_err());
        assert!(ScoreMatrix::from_rows(rows.clone(), Some(vec![-1.0, 2.0])).is_err());
        assert!(ScoreMatrix::from_rows(rows, Some(vec![0.0, 0.0])).is_err());
    }

    #[test]
    fn discrete_exact_uses_atom_probabilities() {
        let d = Dataset::from_rows(vec![vec![1.0], vec![0.5]]).unwrap();
        let f1: Arc<dyn UtilityFunction> = Arc::new(TableUtility::new(vec![1.0, 0.2]).unwrap());
        let f2: Arc<dyn UtilityFunction> = Arc::new(TableUtility::new(vec![0.1, 0.9]).unwrap());
        let dist = DiscreteDistribution::new(vec![(f1, 1.0), (f2, 3.0)], 1).unwrap();
        let m = ScoreMatrix::from_discrete_exact(&d, &dist).unwrap();
        assert_eq!(m.n_samples(), 2);
        assert!((m.weight(0) - 0.25).abs() < 1e-12);
        assert!((m.weight(1) - 0.75).abs() < 1e-12);
        assert_eq!(m.best_index(1), 1);
    }

    #[test]
    fn tiled_build_is_bit_identical_to_dense_build_on_the_subset() {
        // The pinned contract from the tiled-build doc comment: for the
        // same RNG stream, `from_distribution_tiled(D, keep)` equals
        // `from_distribution(D.subset(keep))` in every stored bit.
        let d = Dataset::from_rows(
            (0..997) // deliberately not a multiple of the band width
                .map(|i| {
                    let x = (i as f64 * 0.7371).fract();
                    vec![x, (1.0 - x) * 0.9, (i as f64 * 0.1313).fract()]
                })
                .collect(),
        )
        .unwrap();
        let keep: Vec<usize> = (0..d.len()).filter(|i| i % 7 == 0 || i % 11 == 3).collect();
        let dist = UniformLinear::new(3).unwrap();
        let mut rng_tiled = StdRng::seed_from_u64(42);
        let (tiled, stats) =
            ScoreMatrix::from_distribution_tiled(&d, &dist, 40, &mut rng_tiled, &keep).unwrap();
        let mut rng_dense = StdRng::seed_from_u64(42);
        let dense =
            ScoreMatrix::from_distribution(&d.subset(&keep).unwrap(), &dist, 40, &mut rng_dense)
                .unwrap();
        // Same RNG seed, same sampling order → same functions; now every
        // stored field must agree bitwise.
        assert_eq!(tiled.n_samples(), dense.n_samples());
        assert_eq!(tiled.n_points(), dense.n_points());
        for u in 0..40 {
            assert_eq!(tiled.row(u), dense.row(u), "row {u}");
            assert_eq!(tiled.best_index(u), dense.best_index(u));
            assert_eq!(tiled.best_value(u).to_bits(), dense.best_value(u).to_bits());
            assert_eq!(tiled.weight(u).to_bits(), dense.weight(u).to_bits());
        }
        // An arbitrary keep loses some best points, and the stats say so.
        assert_eq!(stats.source_points, d.len());
        assert_eq!(stats.kept_points, keep.len());
        assert!(stats.max_shortfall > 0.0);
        assert!(stats.mean_shortfall > 0.0);
        assert!(stats.mean_shortfall <= stats.max_shortfall);
        // A full keep loses nothing: shortfall is exactly zero.
        let all: Vec<usize> = (0..d.len()).collect();
        let mut rng_all = StdRng::seed_from_u64(42);
        let (_, full_stats) =
            ScoreMatrix::from_distribution_tiled(&d, &dist, 40, &mut rng_all, &all).unwrap();
        assert_eq!(full_stats.max_shortfall, 0.0);
        assert_eq!(full_stats.mean_shortfall, 0.0);
    }

    #[test]
    fn tiled_build_validates_the_keep_list() {
        let d = Dataset::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let dist = UniformLinear::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ScoreMatrix::from_distribution_tiled(&d, &dist, 4, &mut rng, &[]).is_err());
        assert!(ScoreMatrix::from_distribution_tiled(&d, &dist, 4, &mut rng, &[2]).is_err());
        assert!(ScoreMatrix::from_distribution_tiled(&d, &dist, 4, &mut rng, &[1, 0]).is_err());
        assert!(ScoreMatrix::from_distribution_tiled(&d, &dist, 4, &mut rng, &[0, 0]).is_err());
        assert!(ScoreMatrix::from_distribution_tiled(&d, &dist, 0, &mut rng, &[0]).is_err());
    }

    /// From-scratch comparator for the incremental mutations: rebuilds a
    /// matrix from `m`'s current rows and asserts every stored field is
    /// bit-identical.
    fn assert_matches_fresh_build(m: &ScoreMatrix) {
        let mut flat = Vec::with_capacity(m.n_samples() * m.n_points());
        for u in 0..m.n_samples() {
            flat.extend_from_slice(m.row(u));
        }
        let fresh = ScoreMatrix::from_flat_with_layout(
            flat,
            m.n_samples(),
            m.n_points(),
            None,
            m.has_column_mirror(),
        )
        .unwrap();
        for u in 0..m.n_samples() {
            assert_eq!(m.row(u), fresh.row(u), "row {u} diverged");
            assert_eq!(m.best_index(u), fresh.best_index(u), "best index {u} diverged");
            assert_eq!(
                m.best_value(u).to_bits(),
                fresh.best_value(u).to_bits(),
                "best value {u} diverged"
            );
            assert_eq!(m.weight(u).to_bits(), fresh.weight(u).to_bits());
        }
        for p in 0..m.n_points() {
            assert_eq!(m.column(p).map(<[f64]>::to_vec), fresh.column(p).map(<[f64]>::to_vec));
        }
    }

    #[test]
    fn insert_points_matches_fresh_build() {
        let mut m = table_i_matrix();
        m.insert_points(&[vec![0.95, 0.1, 0.4, 0.3], vec![0.1, 0.2, 0.7, 1.0]]).unwrap();
        assert_eq!(m.n_points(), 6);
        // The first new point beats Alex's old best (0.9 < 0.95).
        assert_eq!(m.best_index(0), 4);
        assert!((m.best_value(0) - 0.95).abs() < 1e-12);
        // Jerry keeps Shangri la.
        assert_eq!(m.best_index(1), 1);
        assert_matches_fresh_build(&m);
        // No-op insert and mirrorless layout.
        m.insert_points(&[]).unwrap();
        assert_eq!(m.n_points(), 6);
        let mut bare = table_i_matrix().drop_column_mirror();
        bare.insert_points(&[vec![0.95, 0.1, 0.4, 0.3]]).unwrap();
        assert!(bare.column(0).is_none());
        assert_matches_fresh_build(&bare);
    }

    #[test]
    fn insert_points_validates_without_mutating() {
        let mut m = table_i_matrix();
        assert!(matches!(
            m.insert_points(&[vec![1.0, 2.0]]),
            Err(FamError::DimensionMismatch { expected: 4, got: 2 })
        ));
        assert!(matches!(
            m.insert_points(&[vec![1.0, f64::NAN, 0.2, 0.1]]),
            Err(FamError::NonFinite { row: 1, col: 4 })
        ));
        assert!(matches!(
            m.insert_points(&[vec![1.0, 0.1, -0.2, 0.1]]),
            Err(FamError::NegativeValue { row: 2, col: 4 })
        ));
        assert_eq!(m.n_points(), 4);
        assert_matches_fresh_build(&m);
    }

    #[test]
    fn delete_points_matches_fresh_build() {
        let mut m = table_i_matrix();
        let remap = m.delete_points(&[1]).unwrap();
        // Swap-remove: the last point (Hilton, 3) fills the freed slot 1.
        assert_eq!(remap, vec![Some(0), None, Some(2), Some(1)]);
        assert_eq!(m.n_points(), 3);
        // Jerry's best was Shangri la (deleted) -> rescan finds Holiday Inn.
        assert_eq!(m.best_index(1), 0);
        assert!((m.best_value(1) - 0.6).abs() < 1e-12);
        // Tom's best (Hilton, old index 3) survives in slot 1.
        assert_eq!(m.best_index(2), 1);
        assert!((m.best_value(2) - 1.0).abs() < 1e-12);
        assert_matches_fresh_build(&m);
        let remap = m.delete_points(&[]).unwrap();
        assert_eq!(remap.len(), 3);
        let mut bare = table_i_matrix().drop_column_mirror();
        bare.delete_points(&[0, 3]).unwrap();
        assert_matches_fresh_build(&bare);
    }

    #[test]
    fn delete_with_bitwise_tied_duplicates_matches_fresh_build() {
        // Point 2 duplicates the best (point 1) bit for bit. Deleting
        // point 0 swap-moves the duplicate into slot 0, ahead of the
        // surviving best — the repaired first-argmax must follow it, just
        // like a fresh build of the reordered buffer would.
        let mut m =
            ScoreMatrix::from_rows(vec![vec![0.5, 0.9, 0.9], vec![0.4, 0.3, 0.2]], None).unwrap();
        assert_eq!(m.best_index(0), 1);
        let remap = m.delete_points(&[0]).unwrap();
        assert_eq!(remap, vec![None, Some(1), Some(0)]);
        assert_eq!(m.best_index(0), 0, "relocated duplicate steals the first-argmax slot");
        assert!((m.best_value(0) - 0.9).abs() < 1e-12);
        assert_eq!(m.best_index(1), 1, "untied row keeps its remapped best");
        assert_matches_fresh_build(&m);
    }

    #[test]
    fn delete_points_rejects_invalid_batches() {
        let mut m = table_i_matrix();
        assert!(matches!(
            m.delete_points(&[9]),
            Err(FamError::IndexOutOfBounds { index: 9, len: 4 })
        ));
        assert!(m.delete_points(&[1, 1]).is_err());
        assert!(matches!(m.delete_points(&[0, 1, 2, 3]), Err(FamError::EmptyDataset)));
        // A row left without any positive score aborts without mutating.
        let mut z = ScoreMatrix::from_rows(vec![vec![0.5, 0.0], vec![0.1, 0.2]], None).unwrap();
        assert!(matches!(z.delete_points(&[0]), Err(FamError::DegenerateUtility { sample: 0 })));
        assert_eq!(z.n_points(), 2);
        assert_eq!(z.best_index(0), 0);
        assert_matches_fresh_build(&m);
    }

    #[test]
    fn interleaved_mutations_track_fresh_builds() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let rows: Vec<Vec<f64>> =
            (0..17).map(|_| (0..9).map(|_| rng.gen_range(0.01..1.0)).collect()).collect();
        let mut m = ScoreMatrix::from_rows(rows, None).unwrap();
        for _ in 0..12 {
            if m.n_points() > 2 && rng.gen_bool(0.5) {
                let a = rng.gen_range(0..m.n_points());
                let b = rng.gen_range(0..m.n_points());
                let dels: Vec<usize> = if a == b { vec![a] } else { vec![a, b] };
                m.delete_points(&dels).unwrap();
            } else {
                let cols: Vec<Vec<f64>> = (0..rng.gen_range(1..3))
                    .map(|_| (0..17).map(|_| rng.gen_range(0.01..1.0)).collect())
                    .collect();
                m.insert_points(&cols).unwrap();
            }
            assert_matches_fresh_build(&m);
        }
    }

    #[test]
    fn append_samples_matches_fresh_build() {
        let mut m = table_i_matrix();
        m.append_sample_rows(&[vec![0.3, 0.2, 0.8, 0.1], vec![0.95, 0.4, 0.2, 0.9]]).unwrap();
        assert_eq!(m.n_samples(), 6);
        assert_eq!(m.best_index(4), 2);
        assert!((m.best_value(5) - 0.95).abs() < 1e-12);
        // The mass re-spread uniformly over the grown stream.
        assert!((m.weight(0) - 1.0 / 6.0).abs() < 1e-15);
        assert_matches_fresh_build(&m);
        // Empty appends are identity; mirrorless layouts append too.
        m.append_sample_rows(&[]).unwrap();
        assert_eq!(m.n_samples(), 6);
        let mut bare = table_i_matrix().drop_column_mirror();
        bare.append_sample_rows(&[vec![0.5, 0.6, 0.7, 0.8]]).unwrap();
        assert!(bare.column(0).is_none());
        assert_matches_fresh_build(&bare);
        // The flat entry point is equivalent.
        let mut flat = table_i_matrix();
        flat.append_samples_flat(&[0.3, 0.2, 0.8, 0.1, 0.95, 0.4, 0.2, 0.9], 2).unwrap();
        for u in 0..6 {
            assert_eq!(flat.row(u), m.row(u));
        }
        assert_matches_fresh_build(&flat);
    }

    #[test]
    fn append_samples_validates_without_mutating() {
        let mut m = table_i_matrix();
        assert!(matches!(
            m.append_sample_rows(&[vec![1.0, 2.0]]),
            Err(FamError::DimensionMismatch { expected: 4, got: 2 })
        ));
        // Error indices name the concatenated sample stream.
        assert!(matches!(
            m.append_sample_rows(&[vec![1.0, 0.1, f64::NAN, 0.2]]),
            Err(FamError::NonFinite { row: 4, col: 2 })
        ));
        assert!(matches!(
            m.append_sample_rows(&[vec![0.5; 4], vec![0.2, -0.1, 0.3, 0.4]]),
            Err(FamError::NegativeValue { row: 5, col: 1 })
        ));
        assert!(matches!(
            m.append_sample_rows(&[vec![0.5; 4], vec![0.0; 4]]),
            Err(FamError::DegenerateUtility { sample: 5 })
        ));
        assert!(matches!(
            m.append_samples_flat(&[0.5; 7], 2),
            Err(FamError::DimensionMismatch { expected: 8, got: 7 })
        ));
        assert_eq!(m.n_samples(), 4);
        assert_matches_fresh_build(&m);
        // Non-uniform weights cannot absorb i.i.d. appends.
        let mut weighted =
            ScoreMatrix::from_rows(vec![vec![1.0, 0.5], vec![0.5, 1.0]], Some(vec![3.0, 1.0]))
                .unwrap();
        let err = weighted.append_sample_rows(&[vec![0.5, 0.5]]).unwrap_err();
        assert!(err.to_string().contains("uniform"), "{err}");
    }

    #[test]
    fn repeated_appends_amortize_mirror_slack() {
        // Many small appends: the mirror re-lays only on capacity
        // exhaustion, and every intermediate state equals a fresh build.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = table_i_matrix();
        for _ in 0..10 {
            let rows: Vec<Vec<f64>> = (0..rng.gen_range(1..4))
                .map(|_| (0..4).map(|_| rng.gen_range(0.01..1.0)).collect())
                .collect();
            m.append_sample_rows(&rows).unwrap();
            assert_matches_fresh_build(&m);
        }
        assert!(m.n_samples() > 4);
    }

    #[test]
    fn interleaved_point_and_sample_mutations_track_fresh_builds() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        for mirror in [true, false] {
            let rows: Vec<Vec<f64>> =
                (0..6).map(|_| (0..5).map(|_| rng.gen_range(0.01..1.0)).collect()).collect();
            let base = ScoreMatrix::from_rows(rows, None).unwrap();
            let mut m = if mirror { base } else { base.drop_column_mirror() };
            for _ in 0..14 {
                match rng.gen_range(0..3) {
                    0 if m.n_points() > 2 => {
                        let d = rng.gen_range(0..m.n_points());
                        m.delete_points(&[d]).unwrap();
                    }
                    1 => {
                        let cols: Vec<Vec<f64>> = (0..rng.gen_range(1..3))
                            .map(|_| (0..m.n_samples()).map(|_| rng.gen_range(0.01..1.0)).collect())
                            .collect();
                        m.insert_points(&cols).unwrap();
                    }
                    _ => {
                        let new_rows: Vec<Vec<f64>> = (0..rng.gen_range(1..4))
                            .map(|_| (0..m.n_points()).map(|_| rng.gen_range(0.01..1.0)).collect())
                            .collect();
                        m.append_sample_rows(&new_rows).unwrap();
                    }
                }
                assert_matches_fresh_build(&m);
            }
        }
    }

    #[test]
    fn append_functions_matches_from_distribution_stream() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = Dataset::from_rows(vec![vec![0.2, 0.8], vec![0.9, 0.3], vec![0.5, 0.55]]).unwrap();
        let dist = UniformLinear::new(2).unwrap();
        // Grown: N0 = 20, then +20 +40 off the same RNG stream.
        let mut rng = StdRng::seed_from_u64(5);
        let mut grown = ScoreMatrix::from_distribution(&d, &dist, 20, &mut rng).unwrap();
        grown.append_samples(&d, &dist, 20, &mut rng).unwrap();
        grown.append_samples(&d, &dist, 40, &mut rng).unwrap();
        // From scratch over the concatenated stream (fresh RNG, same seed).
        let mut rng2 = StdRng::seed_from_u64(5);
        let fresh = ScoreMatrix::from_distribution(&d, &dist, 80, &mut rng2).unwrap();
        assert_eq!(grown.n_samples(), 80);
        for u in 0..80 {
            assert_eq!(grown.row(u), fresh.row(u), "row {u}");
            assert_eq!(grown.best_index(u), fresh.best_index(u));
            assert_eq!(grown.best_value(u).to_bits(), fresh.best_value(u).to_bits());
            assert_eq!(grown.weight(u).to_bits(), fresh.weight(u).to_bits());
        }
        for p in 0..3 {
            assert_eq!(grown.column(p).map(<[f64]>::to_vec), fresh.column(p).map(<[f64]>::to_vec));
        }
        // A wrong-universe dataset is rejected up front.
        let wrong = Dataset::from_rows(vec![vec![0.1, 0.2]]).unwrap();
        let mut rng3 = StdRng::seed_from_u64(5);
        assert!(grown.append_samples(&wrong, &dist, 5, &mut rng3).is_err());
    }

    #[test]
    fn restrict_columns_recomputes_best() {
        let m = table_i_matrix();
        let r = m.restrict_columns(&[2, 3]).unwrap();
        assert_eq!(r.n_points(), 2);
        // Alex's best among {Intercontinental, Hilton} is Hilton (0.4).
        assert_eq!(r.best_index(0), 1);
        assert!((r.best_value(0) - 0.4).abs() < 1e-12);
        assert!(m.restrict_columns(&[]).is_err());
        assert!(m.restrict_columns(&[9]).is_err());
    }

    /// Degenerate and tile-straddling geometries through the kernelized
    /// construction paths: 1×1, 1×n, N×1, and sizes around the kernel
    /// tile width must all produce correct bests and mirrors.
    #[test]
    fn kernel_edge_geometries_build_correctly() {
        use crate::kernels::TILE;
        // 1×1: the smallest legal matrix.
        let m = ScoreMatrix::from_rows(vec![vec![0.5]], None).unwrap();
        assert_eq!((m.best_index(0), m.best_value(0)), (0, 0.5));
        assert_eq!(m.column(0).unwrap(), &[0.5]);
        // 1×n around the tile boundary: the max sits in the tail tile.
        for n in [1, 2, TILE - 1, TILE, TILE + 1, 2 * TILE + 3] {
            let mut row: Vec<f64> = (0..n).map(|p| 0.1 + (p % 7) as f64 * 0.01).collect();
            row[n - 1] = 9.0;
            let m = ScoreMatrix::from_rows(vec![row], None).unwrap();
            assert_eq!(m.best_index(0), n - 1, "n={n}");
            assert_eq!(m.best_value(0), 9.0);
        }
        // N×1: every row is a single-element scan.
        let rows: Vec<Vec<f64>> = (0..(TILE + 5)).map(|u| vec![0.01 + u as f64]).collect();
        let m = ScoreMatrix::from_rows(rows, None).unwrap();
        for u in 0..m.n_samples() {
            assert_eq!(m.best_index(u), 0);
            assert_eq!(m.best_value(u), 0.01 + u as f64);
        }
        assert_eq!(m.column(0).unwrap().len(), TILE + 5);
    }

    /// The fused linear scoring kernel in `from_functions` must be
    /// bit-identical to scoring the same functions through the virtual
    /// per-element path (a wrapper hiding `linear_weights`) and to manual
    /// `kernels::dot` calls.
    #[test]
    fn fused_linear_from_functions_is_bitwise_virtual_path() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        /// Same weights, but opted out of the batch kernel: exercises the
        /// generic virtual-dispatch row fill.
        struct Opaque(LinearUtility);
        impl UtilityFunction for Opaque {
            fn utility(&self, index: usize, point: &[f64]) -> f64 {
                self.0.utility(index, point)
            }
        }

        let mut rng = StdRng::seed_from_u64(77);
        let dim = 3;
        // Point count straddles the scoring tile; sample count straddles
        // the LANES unroll.
        let n = crate::kernels::TILE + 2;
        let n_samples = crate::kernels::LANES + 1;
        let points: Vec<Vec<f64>> =
            (0..n).map(|_| (0..dim).map(|_| rng.gen_range(0.01..1.0)).collect()).collect();
        let d = Dataset::from_rows(points).unwrap();
        let weights: Vec<Vec<f64>> =
            (0..n_samples).map(|_| (0..dim).map(|_| rng.gen_range(0.01..1.0)).collect()).collect();
        let fused: Vec<Arc<dyn UtilityFunction>> = weights
            .iter()
            .map(|w| Arc::new(LinearUtility::new(w.clone()).unwrap()) as Arc<dyn UtilityFunction>)
            .collect();
        let virt: Vec<Arc<dyn UtilityFunction>> = weights
            .iter()
            .map(|w| {
                Arc::new(Opaque(LinearUtility::new(w.clone()).unwrap())) as Arc<dyn UtilityFunction>
            })
            .collect();
        let mf = ScoreMatrix::from_functions(&d, &fused, None).unwrap();
        let mv = ScoreMatrix::from_functions(&d, &virt, None).unwrap();
        for (u, w) in weights.iter().enumerate() {
            for p in 0..n {
                let manual = crate::kernels::dot(w, d.point(p));
                assert_eq!(mf.score(u, p).to_bits(), manual.to_bits(), "u={u} p={p}");
                assert_eq!(mf.score(u, p).to_bits(), mv.score(u, p).to_bits(), "u={u} p={p}");
            }
            assert_eq!(mf.best_index(u), mv.best_index(u));
            assert_eq!(mf.best_value(u).to_bits(), mv.best_value(u).to_bits());
        }
    }

    /// Invalid linear scores surface through the fused kernel with the
    /// same error classification as the scalar path.
    #[test]
    fn fused_linear_path_reports_nonfinite_and_degenerate() {
        // Finite inputs whose dot product overflows to +inf: the fused
        // pass must flag the first offending column.
        let d = Dataset::from_rows(vec![vec![2.0, 2.0], vec![0.5, 0.5]]).unwrap();
        let fs: Vec<Arc<dyn UtilityFunction>> =
            vec![Arc::new(LinearUtility::new(vec![f64::MAX, f64::MAX]).unwrap())];
        assert!(matches!(
            ScoreMatrix::from_functions(&d, &fs, None),
            Err(FamError::NonFinite { row: 0, col: 0 })
        ));
        // All-zero scores under a weight vector orthogonal to every point.
        let d2 = Dataset::from_rows(vec![vec![0.0, 1.0], vec![0.0, 2.0]]).unwrap();
        let fs2: Vec<Arc<dyn UtilityFunction>> =
            vec![Arc::new(LinearUtility::new(vec![1.0, 0.0]).unwrap())];
        assert!(matches!(
            ScoreMatrix::from_functions(&d2, &fs2, None),
            Err(FamError::DegenerateUtility { sample: 0 })
        ));
    }
}
