//! Small statistics helpers shared by the regret metrics and experiments.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    // fam-lint: allow(K001) -- cold diagnostic aggregate shared by reports/experiments; the sequential shape is part of the streamed-report contract
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices shorter than 1.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    // fam-lint: allow(K001) -- same: report-path variance, not a per-candidate hot loop
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Weighted mean with weights assumed to sum to 1.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ws.len());
    xs.iter().zip(ws).map(|(x, w)| x * w).sum()
}

/// Weighted population variance with weights assumed to sum to 1.
pub fn weighted_variance(xs: &[f64], ws: &[f64]) -> f64 {
    let m = weighted_mean(xs, ws);
    xs.iter().zip(ws).map(|(x, w)| w * (x - m) * (x - m)).sum()
}

/// Value at the `q`-th percentile (0..=100) of the users, nearest-rank
/// convention on values sorted ascending. Used for the paper's
/// "regret ratio at users percentile" plots (Figures 3, 11, 12).
///
/// # Panics
///
/// Panics (debug) if `sorted` is empty or `q` outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=100.0).contains(&q));
    if q <= 0.0 {
        return sorted[0];
    }
    let rank = (q / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Weighted percentile: smallest value `v` such that the cumulative weight
/// of users with value `<= v` reaches `q/100`. `pairs` must be sorted by
/// value ascending; weights are assumed to sum to 1.
pub fn weighted_percentile_sorted(pairs: &[(f64, f64)], q: f64) -> f64 {
    debug_assert!(!pairs.is_empty());
    let target = q / 100.0;
    let mut acc = 0.0;
    for &(v, w) in pairs {
        acc += w;
        if acc >= target - 1e-12 {
            return v;
        }
    }
    pairs.last().expect("non-empty").0
}

/// Numerically stable single-pass mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations so far (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn weighted_moments() {
        let xs = [0.0, 1.0];
        let ws = [0.25, 0.75];
        assert!((weighted_mean(&xs, &ws) - 0.75).abs() < 1e-12);
        // Var = 0.25*(0.75)^2 + 0.75*(0.25)^2 = 0.1875
        assert!((weighted_variance(&xs, &ws) - 0.1875).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 20.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 21.0), 2.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 5.0);
        assert_eq!(percentile_sorted(&xs, 50.0), 3.0);
    }

    #[test]
    fn weighted_percentile_respects_mass() {
        let pairs = [(0.0, 0.9), (1.0, 0.1)];
        assert_eq!(weighted_percentile_sorted(&pairs, 50.0), 0.0);
        assert_eq!(weighted_percentile_sorted(&pairs, 89.0), 0.0);
        assert_eq!(weighted_percentile_sorted(&pairs, 95.0), 1.0);
        assert_eq!(weighted_percentile_sorted(&pairs, 100.0), 1.0);
    }

    #[test]
    fn online_stats_matches_batch() {
        let xs = [0.5, 1.5, 2.5, 0.25, 9.0];
        let mut s = OnlineStats::new();
        for x in xs {
            s.push(x);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        assert!((s.variance() - variance(&xs)).abs() < 1e-10);
        assert!((s.std_dev() - variance(&xs).sqrt()).abs() < 1e-10);
    }

    #[test]
    fn online_stats_small_counts() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        s.push(4.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 4.0);
    }
}
