//! Sample-size bounds for estimating the average regret ratio
//! (Theorem 4 and Table V of the paper).

use crate::error::{FamError, Result};

/// Minimum number of i.i.d. utility samples `N` such that the estimated
/// average regret ratio is within `epsilon` of the truth with confidence
/// `1 - sigma` (Theorem 4): `N >= 3 ln(1/sigma) / epsilon^2`.
///
/// The result is the ceiling of the bound (the smallest integer satisfying
/// the theorem); the paper's Table V truncates some entries, so values may
/// differ from the paper by one.
///
/// # Errors
///
/// Returns an error unless `0 < epsilon <= 1` and `0 < sigma < 1`.
///
/// # Examples
///
/// ```
/// use fam_core::chernoff_sample_size;
/// assert_eq!(chernoff_sample_size(0.01, 0.1).unwrap(), 69_078);
/// ```
pub fn chernoff_sample_size(epsilon: f64, sigma: f64) -> Result<u64> {
    if !(epsilon > 0.0 && epsilon <= 1.0 && epsilon.is_finite()) {
        return Err(FamError::InvalidParameter {
            name: "epsilon",
            message: format!("must be in (0, 1], got {epsilon}"),
        });
    }
    if !(sigma > 0.0 && sigma < 1.0 && sigma.is_finite()) {
        return Err(FamError::InvalidParameter {
            name: "sigma",
            message: format!("must be in (0, 1), got {sigma}"),
        });
    }
    Ok((3.0 * (1.0 / sigma).ln() / (epsilon * epsilon)).ceil() as u64)
}

/// Error `epsilon` achieved by `n` samples at confidence `1 - sigma`
/// (the inverse of [`chernoff_sample_size`]): `epsilon = sqrt(3 ln(1/sigma) / N)`.
///
/// # Errors
///
/// Returns an error unless `n >= 1` and `0 < sigma < 1`.
pub fn chernoff_epsilon(n: u64, sigma: f64) -> Result<f64> {
    if n == 0 {
        return Err(FamError::InvalidParameter { name: "n", message: "must be at least 1".into() });
    }
    if !(sigma > 0.0 && sigma < 1.0 && sigma.is_finite()) {
        return Err(FamError::InvalidParameter {
            name: "sigma",
            message: format!("must be in (0, 1), got {sigma}"),
        });
    }
    Ok((3.0 * (1.0 / sigma).ln() / n as f64).sqrt())
}

/// Default failure probability used wherever a precision request names
/// only `epsilon`: the paper's Table V headline confidence (`1 - sigma =
/// 90%`).
pub const DEFAULT_SIGMA: f64 = 0.1;

/// Environment variable naming a hard byte budget for a single sampled
/// score-matrix layout (`N × n × 8` bytes). Unset, empty, or unparsable
/// means **no budget** — only address-space overflow is rejected then.
pub const MAX_MATRIX_BYTES_ENV: &str = "FAM_MAX_MATRIX_BYTES";

/// Rejects sample counts whose `N × n × 8`-byte score-matrix footprint
/// overflows the address space or exceeds the configured budget
/// ([`MAX_MATRIX_BYTES_ENV`], default off) — *before* the allocator gets
/// a chance to abort the process. `chernoff_sample_size(0.001, 0.01)` is
/// ~1.4e7 samples; against a large database that is a silent
/// hundreds-of-gigabytes allocation without this guard.
///
/// The bound covers one layout; the point-major mirror doubles the
/// resident footprint, so budget roughly half the memory you are willing
/// to spend on a mirrored matrix.
///
/// # Errors
///
/// Returns [`FamError::InvalidParameter`] naming the offending footprint.
pub fn check_matrix_budget(n_samples: usize, n_points: usize) -> Result<()> {
    let budget =
        std::env::var(MAX_MATRIX_BYTES_ENV).ok().and_then(|v| v.trim().parse::<u64>().ok());
    check_matrix_budget_with(n_samples, n_points, budget)
}

/// [`check_matrix_budget`] with an explicit budget instead of the
/// environment variable (`None` = overflow check only).
///
/// # Errors
///
/// See [`check_matrix_budget`].
pub fn check_matrix_budget_with(
    n_samples: usize,
    n_points: usize,
    budget: Option<u64>,
) -> Result<()> {
    let bytes = (n_samples as u64)
        .checked_mul(n_points as u64)
        .and_then(|cells| cells.checked_mul(8))
        .filter(|&b| usize::try_from(b).is_ok());
    let Some(bytes) = bytes else {
        return Err(FamError::InvalidParameter {
            name: "n_samples",
            message: format!("a {n_samples} x {n_points} score matrix overflows the address space"),
        });
    };
    if let Some(limit) = budget {
        if bytes > limit {
            return Err(FamError::InvalidParameter {
                name: "n_samples",
                message: format!(
                    "a {n_samples} x {n_points} score matrix needs {bytes} bytes per layout, \
                     over the {MAX_MATRIX_BYTES_ENV} budget of {limit}"
                ),
            });
        }
    }
    Ok(())
}

/// Validates a precision requirement and reports the Chernoff shortfall
/// of `n_samples`: `Ok(None)` when the count satisfies `(epsilon,
/// sigma)` per Theorem 4, `Ok(Some((needed, achieved)))` when it falls
/// short — the single source of the comparison behind the registry's
/// capability gate and the serving layer's cache-covering twin (each
/// phrases its own error around the numbers).
///
/// # Errors
///
/// See [`chernoff_sample_size`].
pub fn precision_shortfall(n_samples: u64, epsilon: f64, sigma: f64) -> Result<Option<(u64, f64)>> {
    let needed = chernoff_sample_size(epsilon, sigma)?;
    if n_samples >= needed {
        return Ok(None);
    }
    Ok(Some((needed, chernoff_epsilon(n_samples.max(1), sigma)?)))
}

/// A precision target on the estimated average regret ratio: additive
/// error `epsilon` at confidence `1 - sigma`. The progressive-refinement
/// drivers (`fam_algos::refine`, the serving layer's `POST /refine`)
/// steer sample growth by it, and [`PrecisionSpec::achieved_epsilon`]
/// reports the ε any sample count `N` has already earned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionSpec {
    /// Additive error bound on the estimated average regret ratio.
    pub epsilon: f64,
    /// Failure probability (confidence is `1 - sigma`).
    pub sigma: f64,
}

impl PrecisionSpec {
    /// Builds a validated spec.
    ///
    /// # Errors
    ///
    /// See [`chernoff_sample_size`].
    pub fn new(epsilon: f64, sigma: f64) -> Result<Self> {
        chernoff_sample_size(epsilon, sigma)?;
        Ok(PrecisionSpec { epsilon, sigma })
    }

    /// The Chernoff sample count satisfying this spec (Theorem 4).
    ///
    /// # Errors
    ///
    /// See [`chernoff_sample_size`] (the fields are public, so a spec can
    /// be mutated out of range after construction).
    pub fn required_samples(&self) -> Result<u64> {
        chernoff_sample_size(self.epsilon, self.sigma)
    }

    /// [`PrecisionSpec::required_samples`] as a `usize`, guarded against
    /// absurd allocations: the count must fit the platform and the
    /// implied `N × n_points` matrix must pass
    /// [`check_matrix_budget`] — the shared front door of every
    /// precision-driven sizing path (the refine drivers, the engine
    /// builder).
    ///
    /// # Errors
    ///
    /// As [`chernoff_sample_size`] and [`check_matrix_budget`], plus
    /// [`FamError::InvalidParameter`] when the count overflows `usize`.
    pub fn required_samples_checked(&self, n_points: usize) -> Result<usize> {
        let target = self.required_samples()?;
        let target = usize::try_from(target).map_err(|_| FamError::InvalidParameter {
            name: "epsilon",
            message: format!("Chernoff bound of {target} samples overflows this platform"),
        })?;
        check_matrix_budget(target, n_points)?;
        Ok(target)
    }

    /// The ε that `n` samples achieve at this spec's confidence.
    ///
    /// # Errors
    ///
    /// See [`chernoff_epsilon`].
    pub fn achieved_epsilon(&self, n: u64) -> Result<f64> {
        chernoff_epsilon(n, self.sigma)
    }

    /// Whether `n` samples already meet the target.
    ///
    /// # Errors
    ///
    /// See [`chernoff_sample_size`].
    pub fn satisfied_by(&self, n: u64) -> Result<bool> {
        Ok(n >= self.required_samples()?)
    }
}

/// A sampling specification: error and confidence parameters together with
/// the implied sample size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSpec {
    /// Additive error bound on the estimated average regret ratio.
    pub epsilon: f64,
    /// Failure probability (confidence is `1 - sigma`).
    pub sigma: f64,
    /// Implied minimum sample size.
    pub n: u64,
}

impl SampleSpec {
    /// Builds a spec from `(epsilon, sigma)`.
    ///
    /// # Errors
    ///
    /// See [`chernoff_sample_size`].
    pub fn new(epsilon: f64, sigma: f64) -> Result<Self> {
        Ok(SampleSpec { epsilon, sigma, n: chernoff_sample_size(epsilon, sigma)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_values() {
        // Paper Table V (ceiling convention; the paper truncates some rows,
        // so we allow ourselves to be the mathematically-correct +1).
        let cases = [
            (0.01, 0.1, 69_078u64),
            (0.001, 0.1, 6_907_756),
            (0.0001, 0.1, 690_775_528),
            (0.01, 0.05, 89_872),
            (0.001, 0.05, 8_987_197),
            (0.0001, 0.05, 898_719_683),
        ];
        for (eps, sigma, expected) in cases {
            let got = chernoff_sample_size(eps, sigma).unwrap();
            assert_eq!(got, expected, "eps={eps}, sigma={sigma}");
            // Never more than one above the paper's (truncated) table.
            let raw = 3.0 * (1.0f64 / sigma).ln() / (eps * eps);
            assert!((got as f64 - raw) < 1.0 && got as f64 >= raw);
        }
    }

    #[test]
    fn epsilon_inverse_roundtrip() {
        let n = chernoff_sample_size(0.01, 0.1).unwrap();
        let eps = chernoff_epsilon(n, 0.1).unwrap();
        assert!(eps <= 0.01 + 1e-9, "achieved eps {eps} should satisfy request");
        assert!(eps > 0.0099, "achieved eps {eps} should be tight");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(chernoff_sample_size(0.0, 0.1).is_err());
        assert!(chernoff_sample_size(-0.1, 0.1).is_err());
        assert!(chernoff_sample_size(1.5, 0.1).is_err());
        assert!(chernoff_sample_size(0.1, 0.0).is_err());
        assert!(chernoff_sample_size(0.1, 1.0).is_err());
        assert!(chernoff_sample_size(f64::NAN, 0.1).is_err());
        assert!(chernoff_epsilon(0, 0.1).is_err());
        assert!(chernoff_epsilon(100, 2.0).is_err());
    }

    #[test]
    fn spec_carries_size() {
        let spec = SampleSpec::new(0.1, 0.1).unwrap();
        assert_eq!(spec.n, chernoff_sample_size(0.1, 0.1).unwrap());
        assert_eq!(spec.epsilon, 0.1);
    }

    #[test]
    fn chernoff_round_trip_property() {
        // The achieved epsilon of the Chernoff-sized sample always meets
        // the request: chernoff_epsilon(chernoff_sample_size(e, s), s) <= e.
        for &eps in &[1.0, 0.5, 0.1, 0.05, 0.02, 0.01, 0.003, 0.001] {
            for &sigma in &[0.9, 0.5, 0.1, 0.05, 0.01, 1e-6] {
                let n = chernoff_sample_size(eps, sigma).unwrap();
                let achieved = chernoff_epsilon(n, sigma).unwrap();
                assert!(
                    achieved <= eps,
                    "eps={eps} sigma={sigma}: N={n} achieves {achieved} > requested"
                );
                // And the bound is tight: one fewer sample misses it.
                if n > 1 {
                    assert!(chernoff_epsilon(n - 1, sigma).unwrap() > eps);
                }
            }
        }
    }

    #[test]
    fn boundary_values() {
        // epsilon = 1 is the loosest valid request.
        let n = chernoff_sample_size(1.0, 0.5).unwrap();
        assert_eq!(n, (3.0 * 2.0f64.ln()).ceil() as u64);
        assert!(chernoff_epsilon(n, 0.5).unwrap() <= 1.0);
        // sigma -> 0 blows the sample count up but stays finite and valid.
        let tiny_sigma = chernoff_sample_size(0.1, 1e-300).unwrap();
        assert!(tiny_sigma > chernoff_sample_size(0.1, 0.1).unwrap());
        // sigma -> 1 needs almost nothing (ln(1/sigma) -> 0), never zero.
        let loose = chernoff_sample_size(1.0, 1.0 - 1e-12).unwrap();
        assert!(loose <= 1, "near-certain failure tolerance wants ~0 samples, got {loose}");
        // The exact endpoints stay rejected.
        assert!(chernoff_sample_size(1.0 + f64::EPSILON, 0.1).is_err());
        assert!(chernoff_sample_size(0.1, 1.0).is_err());
        assert!(chernoff_sample_size(0.1, 0.0).is_err());
    }

    #[test]
    fn spec_equality_and_derives() {
        let a = SampleSpec::new(0.1, 0.1).unwrap();
        let b = a; // Copy
        assert_eq!(a, b);
        assert_eq!(a, a.clone());
        let c = SampleSpec::new(0.1, 0.05).unwrap();
        assert_ne!(a, c);
        assert_ne!(a.n, c.n);
        assert!(format!("{a:?}").contains("SampleSpec"));
    }

    #[test]
    fn precision_spec_reports_achieved_epsilon() {
        let spec = PrecisionSpec::new(0.05, 0.1).unwrap();
        let target = spec.required_samples().unwrap();
        assert_eq!(target, chernoff_sample_size(0.05, 0.1).unwrap());
        assert!(spec.satisfied_by(target).unwrap());
        assert!(!spec.satisfied_by(target - 1).unwrap());
        assert!(spec.achieved_epsilon(target).unwrap() <= 0.05);
        assert!(spec.achieved_epsilon(target / 4).unwrap() > 0.05);
        assert!(PrecisionSpec::new(0.0, 0.1).is_err());
        assert!(PrecisionSpec::new(0.1, 1.0).is_err());
        assert_eq!(spec, spec.clone());
    }

    #[test]
    fn matrix_budget_rejects_overflow_and_limits() {
        // Small footprints always pass without a budget.
        check_matrix_budget_with(50_000, 2_000, None).unwrap();
        // u64 multiplication overflow is a clean error, not a panic/OOM.
        let err = check_matrix_budget_with(usize::MAX, 3, None).unwrap_err();
        assert!(err.to_string().contains("overflows"), "{err}");
        // An explicit budget caps the footprint.
        check_matrix_budget_with(100, 100, Some(80_000)).unwrap();
        let err = check_matrix_budget_with(100, 101, Some(80_000)).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
        // The paper's eps = 0.001, sigma = 0.01 request (~1.4e7 samples)
        // against a 100k-point database is ~11 TB — exactly what the
        // guard exists to refuse.
        let n = chernoff_sample_size(0.001, 0.01).unwrap() as usize;
        assert!(check_matrix_budget_with(n, 100_000, Some(1 << 33)).is_err());
        // The env-driven path is covered by `tests/budget_env.rs`: a
        // dedicated single-test binary, because mutating the process
        // environment while sibling test threads read it through
        // `check_matrix_budget` races.
    }

    #[test]
    fn smaller_epsilon_needs_more_samples() {
        let a = chernoff_sample_size(0.1, 0.1).unwrap();
        let b = chernoff_sample_size(0.01, 0.1).unwrap();
        let c = chernoff_sample_size(0.01, 0.05).unwrap();
        assert!(b > a);
        assert!(c > b);
    }
}
