//! Sample-size bounds for estimating the average regret ratio
//! (Theorem 4 and Table V of the paper).

use crate::error::{FamError, Result};

/// Minimum number of i.i.d. utility samples `N` such that the estimated
/// average regret ratio is within `epsilon` of the truth with confidence
/// `1 - sigma` (Theorem 4): `N >= 3 ln(1/sigma) / epsilon^2`.
///
/// The result is the ceiling of the bound (the smallest integer satisfying
/// the theorem); the paper's Table V truncates some entries, so values may
/// differ from the paper by one.
///
/// # Errors
///
/// Returns an error unless `0 < epsilon <= 1` and `0 < sigma < 1`.
///
/// # Examples
///
/// ```
/// use fam_core::chernoff_sample_size;
/// assert_eq!(chernoff_sample_size(0.01, 0.1).unwrap(), 69_078);
/// ```
pub fn chernoff_sample_size(epsilon: f64, sigma: f64) -> Result<u64> {
    if !(epsilon > 0.0 && epsilon <= 1.0 && epsilon.is_finite()) {
        return Err(FamError::InvalidParameter {
            name: "epsilon",
            message: format!("must be in (0, 1], got {epsilon}"),
        });
    }
    if !(sigma > 0.0 && sigma < 1.0 && sigma.is_finite()) {
        return Err(FamError::InvalidParameter {
            name: "sigma",
            message: format!("must be in (0, 1), got {sigma}"),
        });
    }
    Ok((3.0 * (1.0 / sigma).ln() / (epsilon * epsilon)).ceil() as u64)
}

/// Error `epsilon` achieved by `n` samples at confidence `1 - sigma`
/// (the inverse of [`chernoff_sample_size`]): `epsilon = sqrt(3 ln(1/sigma) / N)`.
///
/// # Errors
///
/// Returns an error unless `n >= 1` and `0 < sigma < 1`.
pub fn chernoff_epsilon(n: u64, sigma: f64) -> Result<f64> {
    if n == 0 {
        return Err(FamError::InvalidParameter { name: "n", message: "must be at least 1".into() });
    }
    if !(sigma > 0.0 && sigma < 1.0 && sigma.is_finite()) {
        return Err(FamError::InvalidParameter {
            name: "sigma",
            message: format!("must be in (0, 1), got {sigma}"),
        });
    }
    Ok((3.0 * (1.0 / sigma).ln() / n as f64).sqrt())
}

/// A sampling specification: error and confidence parameters together with
/// the implied sample size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSpec {
    /// Additive error bound on the estimated average regret ratio.
    pub epsilon: f64,
    /// Failure probability (confidence is `1 - sigma`).
    pub sigma: f64,
    /// Implied minimum sample size.
    pub n: u64,
}

impl SampleSpec {
    /// Builds a spec from `(epsilon, sigma)`.
    ///
    /// # Errors
    ///
    /// See [`chernoff_sample_size`].
    pub fn new(epsilon: f64, sigma: f64) -> Result<Self> {
        Ok(SampleSpec { epsilon, sigma, n: chernoff_sample_size(epsilon, sigma)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_values() {
        // Paper Table V (ceiling convention; the paper truncates some rows,
        // so we allow ourselves to be the mathematically-correct +1).
        let cases = [
            (0.01, 0.1, 69_078u64),
            (0.001, 0.1, 6_907_756),
            (0.0001, 0.1, 690_775_528),
            (0.01, 0.05, 89_872),
            (0.001, 0.05, 8_987_197),
            (0.0001, 0.05, 898_719_683),
        ];
        for (eps, sigma, expected) in cases {
            let got = chernoff_sample_size(eps, sigma).unwrap();
            assert_eq!(got, expected, "eps={eps}, sigma={sigma}");
            // Never more than one above the paper's (truncated) table.
            let raw = 3.0 * (1.0f64 / sigma).ln() / (eps * eps);
            assert!((got as f64 - raw) < 1.0 && got as f64 >= raw);
        }
    }

    #[test]
    fn epsilon_inverse_roundtrip() {
        let n = chernoff_sample_size(0.01, 0.1).unwrap();
        let eps = chernoff_epsilon(n, 0.1).unwrap();
        assert!(eps <= 0.01 + 1e-9, "achieved eps {eps} should satisfy request");
        assert!(eps > 0.0099, "achieved eps {eps} should be tight");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(chernoff_sample_size(0.0, 0.1).is_err());
        assert!(chernoff_sample_size(-0.1, 0.1).is_err());
        assert!(chernoff_sample_size(1.5, 0.1).is_err());
        assert!(chernoff_sample_size(0.1, 0.0).is_err());
        assert!(chernoff_sample_size(0.1, 1.0).is_err());
        assert!(chernoff_sample_size(f64::NAN, 0.1).is_err());
        assert!(chernoff_epsilon(0, 0.1).is_err());
        assert!(chernoff_epsilon(100, 2.0).is_err());
    }

    #[test]
    fn spec_carries_size() {
        let spec = SampleSpec::new(0.1, 0.1).unwrap();
        assert_eq!(spec.n, chernoff_sample_size(0.1, 0.1).unwrap());
        assert_eq!(spec.epsilon, 0.1);
    }

    #[test]
    fn smaller_epsilon_needs_more_samples() {
        let a = chernoff_sample_size(0.1, 0.1).unwrap();
        let b = chernoff_sample_size(0.01, 0.1).unwrap();
        let c = chernoff_sample_size(0.01, 0.05).unwrap();
        assert!(b > a);
        assert!(c > b);
    }
}
