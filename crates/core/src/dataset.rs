//! The point database `D`.
//!
//! A [`Dataset`] stores `n` points in `d` dimensions in a single flat,
//! row-major buffer. All attributes follow the paper's convention of
//! "larger is better" and must be finite and non-negative
//! (points live in `R^d_{>=0}`, Definition 1).

use crate::error::{FamError, Result};

/// An immutable collection of `n` points in `d` dimensions.
///
/// # Examples
///
/// ```
/// use fam_core::Dataset;
///
/// let d = Dataset::from_rows(vec![
///     vec![0.9, 0.1],
///     vec![0.5, 0.5],
///     vec![0.1, 0.9],
/// ]).unwrap();
/// assert_eq!(d.len(), 3);
/// assert_eq!(d.dim(), 2);
/// assert_eq!(d.point(1), &[0.5, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    data: Vec<f64>,
    dim: usize,
    labels: Option<Vec<String>>,
}

impl Dataset {
    /// Builds a dataset from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0`, the buffer is empty or not a multiple
    /// of `dim`, or any value is non-finite or negative.
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(FamError::ZeroDimension);
        }
        if data.is_empty() {
            return Err(FamError::EmptyDataset);
        }
        if !data.len().is_multiple_of(dim) {
            return Err(FamError::DimensionMismatch { expected: dim, got: data.len() % dim });
        }
        for (i, v) in data.iter().enumerate() {
            if !v.is_finite() {
                return Err(FamError::NonFinite { row: i / dim, col: i % dim });
            }
            if *v < 0.0 {
                return Err(FamError::NegativeValue { row: i / dim, col: i % dim });
            }
        }
        Ok(Dataset { data, dim, labels: None })
    }

    /// Builds a dataset from per-point rows.
    ///
    /// # Errors
    ///
    /// Returns an error if the rows are empty, ragged, or contain
    /// non-finite/negative values.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let dim = rows.first().map(|r| r.len()).ok_or(FamError::EmptyDataset)?;
        if dim == 0 {
            return Err(FamError::ZeroDimension);
        }
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in &rows {
            if row.len() != dim {
                return Err(FamError::DimensionMismatch { expected: dim, got: row.len() });
            }
            data.extend_from_slice(row);
        }
        Self::from_flat(data, dim)
    }

    /// Attaches human-readable labels (e.g. hotel or player names) to points.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of labels differs from the number of
    /// points.
    pub fn with_labels(mut self, labels: Vec<String>) -> Result<Self> {
        if labels.len() != self.len() {
            return Err(FamError::DimensionMismatch { expected: self.len(), got: labels.len() });
        }
        self.labels = Some(labels);
        Ok(self)
    }

    /// Number of points `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the dataset holds no points (never true for a constructed
    /// dataset; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Label of point `i`, if labels were attached.
    pub fn label(&self, i: usize) -> Option<&str> {
        self.labels.as_ref().map(|l| l[i].as_str())
    }

    /// Iterator over all points, in index order.
    pub fn points(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// The flat row-major coordinate buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Returns a new dataset containing only the points at `indices`
    /// (in the given order), carrying labels along when present.
    ///
    /// # Errors
    ///
    /// Returns an error if `indices` is empty or any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Result<Self> {
        if indices.is_empty() {
            return Err(FamError::EmptyDataset);
        }
        let mut data = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            if i >= self.len() {
                return Err(FamError::IndexOutOfBounds { index: i, len: self.len() });
            }
            data.extend_from_slice(self.point(i));
        }
        let labels = self.labels.as_ref().map(|l| indices.iter().map(|&i| l[i].clone()).collect());
        Ok(Dataset { data, dim: self.dim, labels })
    }

    /// Scales every dimension so that its maximum becomes 1 (the paper
    /// normalizes utilities "by the largest utility value"). Dimensions whose
    /// maximum is 0 are left untouched.
    #[must_use]
    pub fn normalized_max(&self) -> Self {
        let mut maxes = vec![0.0f64; self.dim];
        for p in self.points() {
            for (m, v) in maxes.iter_mut().zip(p) {
                if *v > *m {
                    *m = *v;
                }
            }
        }
        let mut data = self.data.clone();
        for (i, v) in data.iter_mut().enumerate() {
            let m = maxes[i % self.dim];
            if m > 0.0 {
                *v /= m;
            }
        }
        Dataset { data, dim: self.dim, labels: self.labels.clone() }
    }

    /// Per-dimension maxima, useful for manual normalization checks.
    pub fn dim_maxes(&self) -> Vec<f64> {
        let mut maxes = vec![f64::NEG_INFINITY; self.dim];
        for p in self.points() {
            for (m, v) in maxes.iter_mut().zip(p) {
                if *v > *m {
                    *m = *v;
                }
            }
        }
        maxes
    }

    /// Validates that `indices` form a legal selection over this dataset:
    /// non-empty, within bounds, and free of duplicates.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first violation found.
    pub fn validate_selection(&self, indices: &[usize]) -> Result<()> {
        if indices.is_empty() {
            return Err(FamError::InvalidK { k: 0, n: self.len() });
        }
        let mut seen = vec![false; self.len()];
        for &i in indices {
            if i >= self.len() {
                return Err(FamError::IndexOutOfBounds { index: i, len: self.len() });
            }
            if seen[i] {
                return Err(FamError::InvalidParameter {
                    name: "selection",
                    message: format!("duplicate point index {i}"),
                });
            }
            seen[i] = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(vec![vec![1.0, 4.0], vec![2.0, 3.0], vec![3.0, 1.0]]).unwrap()
    }

    #[test]
    fn from_rows_roundtrip() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.point(0), &[1.0, 4.0]);
        assert_eq!(d.point(2), &[3.0, 1.0]);
        assert_eq!(d.points().count(), 3);
    }

    #[test]
    fn from_flat_checks_multiple_of_dim() {
        assert!(matches!(
            Dataset::from_flat(vec![1.0, 2.0, 3.0], 2),
            Err(FamError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(Dataset::from_rows(vec![]), Err(FamError::EmptyDataset)));
        assert!(matches!(Dataset::from_flat(vec![], 2), Err(FamError::EmptyDataset)));
    }

    #[test]
    fn rejects_zero_dim() {
        assert!(matches!(Dataset::from_rows(vec![vec![]]), Err(FamError::ZeroDimension)));
    }

    #[test]
    fn rejects_ragged_rows() {
        let r = Dataset::from_rows(vec![vec![1.0, 2.0], vec![1.0]]);
        assert!(matches!(r, Err(FamError::DimensionMismatch { expected: 2, got: 1 })));
    }

    #[test]
    fn rejects_nan_and_negative() {
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0, f64::NAN]]),
            Err(FamError::NonFinite { row: 0, col: 1 })
        ));
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0, -0.5]]),
            Err(FamError::NegativeValue { row: 0, col: 1 })
        ));
        assert!(matches!(
            Dataset::from_rows(vec![vec![f64::INFINITY, 0.5]]),
            Err(FamError::NonFinite { row: 0, col: 0 })
        ));
    }

    #[test]
    fn normalization_scales_each_dim_to_unit_max() {
        let d = sample().normalized_max();
        let maxes = d.dim_maxes();
        assert!((maxes[0] - 1.0).abs() < 1e-12);
        assert!((maxes[1] - 1.0).abs() < 1e-12);
        assert_eq!(d.point(0), &[1.0 / 3.0, 1.0]);
    }

    #[test]
    fn normalization_handles_all_zero_dim() {
        let d = Dataset::from_rows(vec![vec![0.0, 1.0], vec![0.0, 2.0]]).unwrap();
        let n = d.normalized_max();
        assert_eq!(n.point(0), &[0.0, 0.5]);
    }

    #[test]
    fn subset_carries_labels() {
        let d = sample().with_labels(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let s = d.subset(&[2, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), &[3.0, 1.0]);
        assert_eq!(s.label(0), Some("c"));
        assert_eq!(s.label(1), Some("a"));
    }

    #[test]
    fn subset_rejects_bad_indices() {
        assert!(sample().subset(&[5]).is_err());
        assert!(sample().subset(&[]).is_err());
    }

    #[test]
    fn labels_must_match_len() {
        assert!(sample().with_labels(vec!["x".into()]).is_err());
    }

    #[test]
    fn validate_selection_rules() {
        let d = sample();
        assert!(d.validate_selection(&[0, 2]).is_ok());
        assert!(d.validate_selection(&[]).is_err());
        assert!(d.validate_selection(&[3]).is_err());
        assert!(d.validate_selection(&[1, 1]).is_err());
    }
}
