//! Error types shared across the FAM workspace.

use std::fmt;

/// Errors produced when constructing or operating on FAM inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum FamError {
    /// A dataset with zero points was supplied where at least one is needed.
    EmptyDataset,
    /// A dataset or utility function with zero dimensions was supplied.
    ZeroDimension,
    /// A row did not match the dataset dimensionality.
    DimensionMismatch {
        /// Dimensionality the container expects.
        expected: usize,
        /// Dimensionality that was supplied.
        got: usize,
    },
    /// A coordinate or score was NaN or infinite.
    NonFinite {
        /// Row (point or sample) index of the offending value.
        row: usize,
        /// Column index of the offending value.
        col: usize,
    },
    /// A coordinate was negative; the paper assumes points in `R^d_{>=0}`.
    NegativeValue {
        /// Row index of the offending value.
        row: usize,
        /// Column index of the offending value.
        col: usize,
    },
    /// A sampled or supplied utility function assigns no point a positive
    /// utility, making the regret ratio undefined (division by `sat(D,f)=0`).
    DegenerateUtility {
        /// Index of the offending sample.
        sample: usize,
    },
    /// A selection refers to a point index outside the dataset.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of points in the dataset.
        len: usize,
    },
    /// `k` (or another size parameter) is invalid for the given input.
    InvalidK {
        /// The requested output size.
        k: usize,
        /// Number of points available.
        n: usize,
    },
    /// A scalar parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// Probability weights were invalid (negative, non-finite, or zero-sum).
    InvalidWeights(String),
    /// A capability-gated request the named solver cannot serve: an
    /// unknown registry name, a warm seed for a cold-only algorithm, a
    /// range harvest without range support, or a missing raw dataset.
    Unsupported {
        /// The solver (or registry) rejecting the request.
        algo: String,
        /// What was asked for and why it cannot be served.
        message: String,
    },
    /// A textual input (update-op stream, request body, …) failed to parse.
    Parse {
        /// What was being parsed — a file path or e.g. "request body".
        source: String,
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A [`crate::failpoints`] site armed with
    /// [`crate::failpoints::FailAction::Error`] fired — only ever
    /// produced under test-driven fault injection.
    FaultInjected {
        /// The failpoint site that fired.
        site: String,
    },
    /// A cooperative deadline ([`crate::Deadline`]) expired before the
    /// work finished.
    DeadlineExceeded {
        /// The wall-clock budget that was exhausted, in milliseconds
        /// (0 when the deadline was built from an instant rather than a
        /// duration).
        budget_ms: u64,
    },
    /// The work was cancelled via a [`crate::Deadline`] cancellation
    /// flag (e.g. a serving process draining for shutdown).
    Cancelled,
}

impl FamError {
    /// Builds a [`FamError::Parse`] for 1-based `line` of `source`.
    pub fn parse(source: &str, line: usize, message: impl Into<String>) -> Self {
        FamError::Parse { source: source.to_string(), line, message: message.into() }
    }

    /// Builds a [`FamError::Unsupported`] for solver `algo`.
    pub fn unsupported(algo: impl Into<String>, message: impl Into<String>) -> Self {
        FamError::Unsupported { algo: algo.into(), message: message.into() }
    }
}

impl fmt::Display for FamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FamError::EmptyDataset => write!(f, "dataset contains no points"),
            FamError::ZeroDimension => write!(f, "dimensionality must be at least 1"),
            FamError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            FamError::NonFinite { row, col } => {
                write!(f, "non-finite value at row {row}, column {col}")
            }
            FamError::NegativeValue { row, col } => {
                write!(f, "negative value at row {row}, column {col} (points must be in R>=0)")
            }
            FamError::DegenerateUtility { sample } => write!(
                f,
                "utility sample {sample} has no point with positive utility; regret ratio undefined"
            ),
            FamError::IndexOutOfBounds { index, len } => {
                write!(f, "point index {index} out of bounds for dataset of size {len}")
            }
            FamError::InvalidK { k, n } => {
                write!(f, "invalid output size k={k} for dataset of size n={n}")
            }
            FamError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            FamError::InvalidWeights(msg) => write!(f, "invalid probability weights: {msg}"),
            FamError::Unsupported { algo, message } => {
                write!(f, "`{algo}`: unsupported request: {message}")
            }
            FamError::Parse { source, line, message } => {
                write!(f, "{source}, line {line}: {message}")
            }
            FamError::FaultInjected { site } => {
                write!(f, "injected fault at failpoint `{site}`")
            }
            FamError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline exceeded (budget {budget_ms} ms)")
            }
            FamError::Cancelled => write!(f, "cancelled (server draining or request aborted)"),
        }
    }
}

impl std::error::Error for FamError {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, FamError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(FamError, &str)> = vec![
            (FamError::EmptyDataset, "no points"),
            (FamError::ZeroDimension, "at least 1"),
            (FamError::DimensionMismatch { expected: 3, got: 2 }, "expected 3, got 2"),
            (FamError::NonFinite { row: 1, col: 2 }, "row 1, column 2"),
            (FamError::NegativeValue { row: 0, col: 0 }, "R>=0"),
            (FamError::DegenerateUtility { sample: 7 }, "sample 7"),
            (FamError::IndexOutOfBounds { index: 9, len: 4 }, "index 9"),
            (FamError::InvalidK { k: 5, n: 2 }, "k=5"),
            (
                FamError::InvalidParameter { name: "epsilon", message: "must be positive".into() },
                "epsilon",
            ),
            (FamError::InvalidWeights("negative".into()), "negative"),
            (
                FamError::Unsupported { algo: "dp-2d".into(), message: "needs the dataset".into() },
                "`dp-2d`",
            ),
            (FamError::parse("ops.csv", 3, "unknown op `jump`"), "ops.csv, line 3"),
            (FamError::FaultInjected { site: "serve.publish".into() }, "serve.publish"),
            (FamError::DeadlineExceeded { budget_ms: 250 }, "250 ms"),
            (FamError::Cancelled, "cancelled"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "message {msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FamError::EmptyDataset);
    }
}
