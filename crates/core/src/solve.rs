//! The unified solver interface: the context, parameters, and output
//! types every registered algorithm speaks.
//!
//! The `fam-algos` crate defines the `Solver` trait and the name-based
//! registry; this module holds the data types they exchange so that
//! downstream consumers (the serving layer, the CLI, the bench harness)
//! can talk about solver inputs and outputs without depending on any
//! particular algorithm.
//!
//! * [`SolveCtx`] — what a solver runs against: the sampled score matrix
//!   every algorithm consumes, plus (optionally) the raw [`Dataset`] for
//!   coordinate-based algorithms (the exact 2-D DP, CUBE, SKY-DOM, the
//!   LP-exact MRR-GREEDY).
//! * [`SolverParams`] — typed per-call parameters: the output size `k`,
//!   an optional warm-start seed, the angular measure for the 2-D DP,
//!   iteration caps and algorithm toggles. Defaults reproduce each free
//!   function's canonical configuration bit-for-bit.
//! * [`SolveOutput`] — the produced [`Selection`] plus solver-specific
//!   instrumentation notes.

use crate::dataset::Dataset;
use crate::scores::ScoreSource;
use crate::selection::Selection;
use std::time::{Duration, Instant};

/// Wall-clock timer for [`Selection::query_time`] telemetry.
///
/// This is the *one* sanctioned ambient clock read on solver paths: every
/// algorithm times itself through this type, so the `fam-lint` D003 rule
/// (no ambient nondeterminism in the numeric crates) has a single audited
/// site instead of one per algorithm. The reading flows only into
/// reported telemetry — never into a solver decision — so bit-identical
/// reproducibility is unaffected.
#[derive(Debug, Clone, Copy)]
pub struct QueryTimer(Instant);

impl QueryTimer {
    /// Start timing a query.
    #[must_use]
    pub fn start() -> Self {
        // fam-lint: allow(D003) -- sanctioned telemetry clock: elapsed() feeds Selection::query_time only, never a solver decision
        QueryTimer(Instant::now())
    }

    /// Wall-clock time since [`QueryTimer::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// The angular measure the exact 2-D DP integrates against, named so it
/// can travel through parsed parameters (the concrete measure objects
/// live in `fam-algos`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeasureKind {
    /// Weights `(w1, w2)` i.i.d. uniform on the unit square — the
    /// distribution of the paper's sampled experiments.
    #[default]
    UniformBox,
    /// Angle uniform on `[0, π/2]` (unit-norm weight vectors).
    UniformAngle,
}

impl MeasureKind {
    /// Parses the CLI/HTTP spelling (`box` | `angle`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "box" | "uniform-box" => Some(MeasureKind::UniformBox),
            "angle" | "uniform-angle" => Some(MeasureKind::UniformAngle),
            _ => None,
        }
    }

    /// The canonical parameter spelling.
    pub fn name(self) -> &'static str {
        match self {
            MeasureKind::UniformBox => "box",
            MeasureKind::UniformAngle => "angle",
        }
    }
}

/// The candidate-reduction stage requested for a solve, named so it can
/// travel through parsed parameters (the concrete reducers live in
/// `fam-reduce`; the registry in `fam-algos` runs them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceKind {
    /// No reduction: solve over the full point universe.
    #[default]
    None,
    /// Exact dominance pruning: restrict candidates to the skyline.
    /// Lossless for every monotone utility, so sound even for exact
    /// solvers (bit-identical objective values).
    Skyline,
    /// Skyline followed by a directional ε-kernel: keeps the per-direction
    /// argmax over a deterministic grid of positive-orthant directions.
    /// Regret loss is bounded by the declared `reduce_eps`; sound for
    /// heuristics only.
    Coreset,
}

impl ReduceKind {
    /// Parses the CLI/HTTP spelling (`none` | `skyline` | `coreset`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(ReduceKind::None),
            "skyline" => Some(ReduceKind::Skyline),
            "coreset" => Some(ReduceKind::Coreset),
            _ => None,
        }
    }

    /// The canonical parameter spelling.
    pub fn name(self) -> &'static str {
        match self {
            ReduceKind::None => "none",
            ReduceKind::Skyline => "skyline",
            ReduceKind::Coreset => "coreset",
        }
    }
}

/// Typed per-call solver parameters. [`SolverParams::new`] gives every
/// field its canonical default, under which a registered solver is
/// bit-identical to its free-function counterpart.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverParams {
    /// Output size.
    pub k: usize,
    /// Warm-start seed (empty = cold start). Only solvers whose
    /// capabilities declare warm-start support accept a non-empty seed;
    /// for `local-search` the seed is the initial selection to polish.
    pub seed: Vec<usize>,
    /// Angular measure for the exact 2-D DP.
    pub measure: MeasureKind,
    /// Improvement-pass cap for `local-search`.
    pub max_passes: usize,
    /// Branch-and-bound pruning for `brute-force`.
    pub prune: bool,
    /// GREEDY-SHRINK Improvement 2 (lazy lower-bound pruning).
    pub lazy: bool,
    /// GREEDY-SHRINK Improvement 1 (incremental best-point caching).
    pub best_point_cache: bool,
    /// MRR-GREEDY: use the LP-exact variant (requires the raw dataset)
    /// instead of the sampled one.
    pub exact: bool,
    /// Required precision on the sampled estimate: the request is only
    /// served when the context matrix's sample count meets the Chernoff
    /// bound for `(epsilon, sigma)` (Theorem 4). `None` (the default)
    /// accepts any sample count. Exact, coordinate-only solvers carry no
    /// sampling error and ignore the requirement.
    pub epsilon: Option<f64>,
    /// Failure probability for the `epsilon` requirement (confidence is
    /// `1 - sigma`); defaults to [`crate::sampling::DEFAULT_SIGMA`].
    pub sigma: f64,
    /// Candidate-reduction stage to run before dispatch (requires the raw
    /// dataset in the context). The registry checks the solver's
    /// `Caps::reducible` declaration and remaps the output back to
    /// original point ids.
    pub reduce: ReduceKind,
    /// Declared regret bound for [`ReduceKind::Coreset`]; ignored for the
    /// other stages. Defaults to [`DEFAULT_REDUCE_EPS`].
    pub reduce_eps: f64,
}

/// Default `max_passes` for `local-search` (mirrors
/// `LocalSearchConfig::default()` in `fam-algos`).
pub const DEFAULT_MAX_PASSES: usize = 3;

/// Default declared regret bound for coreset reduction.
pub const DEFAULT_REDUCE_EPS: f64 = 0.05;

impl SolverParams {
    /// Canonical parameters for output size `k`.
    pub fn new(k: usize) -> Self {
        SolverParams {
            k,
            seed: Vec::new(),
            measure: MeasureKind::default(),
            max_passes: DEFAULT_MAX_PASSES,
            prune: true,
            lazy: true,
            best_point_cache: true,
            exact: false,
            epsilon: None,
            sigma: crate::sampling::DEFAULT_SIGMA,
            reduce: ReduceKind::default(),
            reduce_eps: DEFAULT_REDUCE_EPS,
        }
    }

    /// True when every field other than `k` holds its canonical default —
    /// the configuration under which result caches may answer for a
    /// solver.
    pub fn is_canonical(&self) -> bool {
        *self == SolverParams::new(self.k)
    }
}

/// What a solver runs against: the score matrix (always), the raw
/// dataset (when the caller has one — coordinate-based solvers require
/// it, matrix-based solvers ignore it), and the per-call parameters.
#[derive(Clone)]
pub struct SolveCtx<'a> {
    /// The sampled utility-score matrix.
    pub matrix: &'a dyn ScoreSource,
    /// The raw point coordinates, when available. Must describe the same
    /// point universe as `matrix`, in the same order.
    pub dataset: Option<&'a Dataset>,
    /// Per-call parameters (output size, warm seed, measure, caps).
    pub params: SolverParams,
}

impl<'a> SolveCtx<'a> {
    /// A matrix-only context with canonical parameters for output size
    /// `k`.
    pub fn new(matrix: &'a dyn ScoreSource, k: usize) -> Self {
        SolveCtx { matrix, dataset: None, params: SolverParams::new(k) }
    }

    /// Attaches the raw dataset for coordinate-based solvers.
    #[must_use]
    pub fn with_dataset(mut self, dataset: &'a Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Replaces the per-call parameters.
    #[must_use]
    pub fn with_params(mut self, params: SolverParams) -> Self {
        self.params = params;
        self
    }
}

impl std::fmt::Debug for SolveCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveCtx")
            .field("n_points", &self.matrix.n_points())
            .field("n_samples", &self.matrix.n_samples())
            .field("dataset", &self.dataset.map(|d| (d.len(), d.dim())))
            .field("params", &self.params)
            .finish()
    }
}

/// What a solver returns: the selection plus named instrumentation
/// values (iteration counts, DP state counts, …) that would otherwise
/// only exist on per-algorithm output structs.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutput {
    /// The produced selection (query time and the solver's own objective
    /// estimate attached, exactly as the free function reports them).
    pub selection: Selection,
    /// Solver-specific instrumentation, e.g. `("iterations", 15.0)`.
    pub notes: Vec<(&'static str, f64)>,
}

impl SolveOutput {
    /// Wraps a selection with no notes.
    pub fn new(selection: Selection) -> Self {
        SolveOutput { selection, notes: Vec::new() }
    }

    /// Attaches one instrumentation note.
    #[must_use]
    pub fn with_note(mut self, name: &'static str, value: f64) -> Self {
        self.notes.push((name, value));
        self
    }

    /// Looks an instrumentation note up by name.
    pub fn note(&self, name: &str) -> Option<f64> {
        self.notes.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scores::ScoreMatrix;

    #[test]
    fn measure_kind_round_trips() {
        for kind in [MeasureKind::UniformBox, MeasureKind::UniformAngle] {
            assert_eq!(MeasureKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(MeasureKind::parse("uniform-angle"), Some(MeasureKind::UniformAngle));
        assert!(MeasureKind::parse("gaussian").is_none());
        assert_eq!(MeasureKind::default(), MeasureKind::UniformBox);
    }

    #[test]
    fn reduce_kind_round_trips() {
        for kind in [ReduceKind::None, ReduceKind::Skyline, ReduceKind::Coreset] {
            assert_eq!(ReduceKind::parse(kind.name()), Some(kind));
        }
        assert!(ReduceKind::parse("sample").is_none());
        assert_eq!(ReduceKind::default(), ReduceKind::None);
    }

    #[test]
    fn canonical_params_detect_overrides() {
        let p = SolverParams::new(4);
        assert!(p.is_canonical());
        let mut q = p.clone();
        q.seed = vec![1];
        assert!(!q.is_canonical());
        let mut q = p.clone();
        q.lazy = false;
        assert!(!q.is_canonical());
        let mut q = p.clone();
        q.measure = MeasureKind::UniformAngle;
        assert!(!q.is_canonical());
        let mut q = p.clone();
        q.epsilon = Some(0.05);
        assert!(!q.is_canonical());
        let mut q = p.clone();
        q.sigma = 0.01;
        assert!(!q.is_canonical());
        let mut q = p.clone();
        q.reduce = ReduceKind::Skyline;
        assert!(!q.is_canonical());
        let mut q = p;
        q.reduce_eps = 0.1;
        assert!(!q.is_canonical());
    }

    #[test]
    fn ctx_and_output_accessors() {
        let m = ScoreMatrix::from_rows(vec![vec![1.0, 0.5], vec![0.5, 1.0]], None).unwrap();
        let ds = Dataset::from_rows(vec![vec![0.9], vec![0.1]]).unwrap();
        let ctx = SolveCtx::new(&m, 1);
        assert!(ctx.dataset.is_none());
        assert_eq!(ctx.params.k, 1);
        let ctx = ctx.with_dataset(&ds);
        assert_eq!(ctx.dataset.unwrap().len(), 2);
        assert!(format!("{ctx:?}").contains("n_points"));
        let mut p = SolverParams::new(2);
        p.exact = true;
        let ctx = ctx.with_params(p);
        assert!(ctx.params.exact && ctx.params.k == 2);

        let out = SolveOutput::new(Selection::new(vec![0], "t")).with_note("iterations", 3.0);
        assert_eq!(out.note("iterations"), Some(3.0));
        assert_eq!(out.note("missing"), None);
    }
}
