//! Incremental average-regret-ratio evaluation.
//!
//! [`SelectionEvaluator`] maintains, for a dynamic selection `S`, each
//! sample's best and second-best point *within `S`*, plus reverse "owner"
//! lists from points to the samples they currently satisfy best. This is
//! Improvement 1 of the paper (Appendix C): evaluating a candidate removal
//! `arr(S − {p})` touches only the samples whose best point is `p`, and
//! applying a removal only rescans those samples (empirically ~1% per
//! iteration on realistic data).
//!
//! The structure supports both removals (GREEDY-SHRINK) and additions
//! (ADD-GREEDY, K-HIT), so owner lists use lazy deletion: entries are
//! verified against the exact `top1`/`top2` arrays before use.
//!
//! # Layout and parallelism
//!
//! The evaluator is layout-aware: full rebuilds and runner-up rescans
//! stream [`ScoreSource::row_slice`] when the substrate is sample-major,
//! and addition scans stream [`ScoreSource::column_slice`] when a
//! point-major mirror exists (see the dual-layout notes in
//! [`crate::scores`]). With the default `parallel` feature, [`rebuild`]
//! and the batched rescans triggered by [`remove`] fan out over all cores
//! through [`crate::par`]; reductions fold fixed chunks in order, so the
//! maintained `arr` is bit-identical between serial and parallel runs.
//! The scans themselves go through the cache-blocked kernels of
//! [`crate::kernels`] (`top_two_dense` / `top_two_gather` for removals,
//! `lane_sum` for the arr folds) — `docs/PERFORMANCE.md` documents the
//! layout trade-offs and the determinism argument.
//!
//! [`rebuild`]: SelectionEvaluator::new_full
//! [`remove`]: SelectionEvaluator::remove

use crate::kernels;
use crate::par;
use crate::scores::{ScoreMatrix, ScoreSource};

const NONE: u32 = kernels::NO_POINT;

/// Best and runner-up of sample `u` over `members`, skipping `exclude`
/// (pass [`NONE`] to skip nothing). Streams the sample's row through
/// [`kernels::top_two_gather`] when the substrate is sample-major.
/// Returned values are 0.0 when the corresponding index is [`NONE`].
fn top_two<S: ScoreSource + ?Sized>(
    m: &S,
    u: usize,
    members: &[u32],
    exclude: u32,
) -> (u32, f64, u32, f64) {
    match m.row_slice(u) {
        Some(row) => kernels::top_two_gather(row, members, exclude),
        None => {
            let (mut b1, mut v1, mut b2, mut v2) = (NONE, 0.0f64, NONE, 0.0f64);
            for &p in members {
                if p == exclude {
                    continue;
                }
                let s = m.score(u, p as usize);
                if b1 == NONE || s > v1 {
                    b2 = b1;
                    v2 = v1;
                    b1 = p;
                    v1 = s;
                } else if b2 == NONE || s > v2 {
                    b2 = p;
                    v2 = s;
                }
            }
            (b1, if b1 == NONE { 0.0 } else { v1 }, b2, if b2 == NONE { 0.0 } else { v2 })
        }
    }
}

/// Instrumentation counters for the efficiency claims of Appendix C.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalCounters {
    /// Samples whose best point changed across all applied mutations.
    pub promotions: u64,
    /// Samples whose second-best point was recomputed by a full scan.
    pub rescans: u64,
    /// Candidate evaluations served from owner lists (`removal_delta`).
    pub delta_evals: u64,
    /// Total samples touched by `removal_delta` calls.
    pub delta_rows_touched: u64,
}

/// Detached [`SelectionEvaluator`] state with no matrix borrow.
///
/// A `SelectionEvaluator` borrows its score source for its whole lifetime,
/// which forbids mutating the matrix (point insertion/deletion) while an
/// evaluator is alive. [`SelectionEvaluator::into_state`] detaches the
/// maintained caches so an owner — e.g. `DynamicEngine` — can patch the
/// matrix and then reattach via [`SelectionEvaluator::from_state`] (matrix
/// unchanged) or [`SelectionEvaluator::resume_after_update`] (points
/// inserted/deleted) without paying a full `O(N·|S|)` rebuild.
#[derive(Debug, Clone)]
pub struct EvaluatorState {
    in_sel: Vec<bool>,
    members: Vec<u32>,
    top1: Vec<u32>,
    top1_val: Vec<f64>,
    top2: Vec<u32>,
    top2_val: Vec<f64>,
    owners: Vec<Vec<u32>>,
    second_owners: Vec<Vec<u32>>,
    arr: f64,
    counters: EvalCounters,
    stamp: Vec<u64>,
    epoch: u64,
}

impl EvaluatorState {
    /// Current `arr(S)`.
    #[inline]
    pub fn arr(&self) -> f64 {
        self.arr
    }

    /// Current selection size.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the selection is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Current members, sorted ascending.
    pub fn selection(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.members.iter().map(|&p| p as usize).collect();
        v.sort_unstable();
        v
    }

    /// Instrumentation counters carried by the detached state.
    pub fn counters(&self) -> &EvalCounters {
        &self.counters
    }

    /// Zero-capacity stand-in used by owners that need to `mem::replace`
    /// their state while a resume is in flight.
    pub(crate) fn placeholder() -> Self {
        EvaluatorState {
            in_sel: Vec::new(),
            members: Vec::new(),
            top1: Vec::new(),
            top1_val: Vec::new(),
            top2: Vec::new(),
            top2_val: Vec::new(),
            owners: Vec::new(),
            second_owners: Vec::new(),
            arr: 0.0,
            counters: EvalCounters::default(),
            stamp: Vec::new(),
            epoch: 0,
        }
    }
}

/// Incrementally maintained `arr(S)` with O(affected-samples) updates.
///
/// # Examples
///
/// ```
/// use fam_core::{ScoreMatrix, SelectionEvaluator};
///
/// let m = ScoreMatrix::from_rows(vec![
///     vec![1.0, 0.8, 0.1],
///     vec![0.2, 0.9, 1.0],
/// ], None).unwrap();
/// let mut ev = SelectionEvaluator::new_full(&m);
/// assert!(ev.arr().abs() < 1e-12); // S = D has zero regret
/// let delta = ev.removal_delta(0);
/// ev.remove(0);
/// assert!((ev.arr() - delta).abs() < 1e-12);
/// ```
pub struct SelectionEvaluator<'a, S: ScoreSource + ?Sized = ScoreMatrix> {
    m: &'a S,
    in_sel: Vec<bool>,
    members: Vec<u32>,
    top1: Vec<u32>,
    top1_val: Vec<f64>,
    top2: Vec<u32>,
    top2_val: Vec<f64>,
    owners: Vec<Vec<u32>>,
    second_owners: Vec<Vec<u32>>,
    arr: f64,
    counters: EvalCounters,
    // Owner lists use lazy deletion, so after interleaved adds/removes a
    // row can appear in `owners[p]` more than once while still having
    // `top1 == p`. Epoch stamps deduplicate rows within one delta pass.
    stamp: Vec<u64>,
    epoch: u64,
    scratch: EvalScratch,
}

/// Reusable buffers for [`SelectionEvaluator::remove`]'s rescan pipeline.
///
/// A GREEDY-SHRINK run calls `remove` `n − k` times, and each call used to
/// allocate five fresh `Vec`s (the promoted-sample list, the rescan batch,
/// saved old values, the stale runner-up batch, and the rescan results).
/// These buffers live on the evaluator instead, retaining their capacity
/// across iterations, so steady-state removals allocate nothing. Purely an
/// allocation cache: every buffer is cleared before use, so it carries no
/// state between calls and is deliberately **not** part of
/// [`EvaluatorState`] (a resumed evaluator just warms a fresh cache).
#[derive(Default)]
struct EvalScratch {
    /// Owner/second-owner entries of the point being removed (copied out
    /// so the lists can be repaired while iterating).
    promoted: Vec<u32>,
    /// Samples whose best point died and whose runner-up was promoted.
    fresh: Vec<u32>,
    /// The dying best values of `fresh`, for the arr update.
    old_vals: Vec<f64>,
    /// Samples whose runner-up died (deduplicated via epoch stamps).
    stale: Vec<u32>,
    /// Runner-up rescan results, index-aligned with the request batch.
    pairs: Vec<(u32, f64)>,
}

impl<'a, S: ScoreSource + ?Sized> SelectionEvaluator<'a, S> {
    /// Starts with `S = D` (the initial state of GREEDY-SHRINK).
    pub fn new_full(m: &'a S) -> Self {
        let n = m.n_points();
        let mut ev = SelectionEvaluator {
            m,
            in_sel: vec![true; n],
            members: (0..n as u32).collect(),
            top1: vec![NONE; m.n_samples()],
            top1_val: vec![0.0; m.n_samples()],
            top2: vec![NONE; m.n_samples()],
            top2_val: vec![0.0; m.n_samples()],
            owners: vec![Vec::new(); n],
            second_owners: vec![Vec::new(); n],
            arr: 0.0,
            counters: EvalCounters::default(),
            stamp: vec![0; m.n_samples()],
            epoch: 0,
            scratch: EvalScratch::default(),
        };
        ev.rebuild();
        ev
    }

    /// Starts with an explicit selection (indices may be in any order; no
    /// duplicates).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or duplicated.
    pub fn new_with(m: &'a S, selection: &[usize]) -> Self {
        let n = m.n_points();
        let mut in_sel = vec![false; n];
        for &p in selection {
            assert!(p < n, "selection index {p} out of bounds");
            assert!(!in_sel[p], "duplicate selection index {p}");
            in_sel[p] = true;
        }
        let mut ev = SelectionEvaluator {
            m,
            in_sel,
            members: selection.iter().map(|&p| p as u32).collect(),
            top1: vec![NONE; m.n_samples()],
            top1_val: vec![0.0; m.n_samples()],
            top2: vec![NONE; m.n_samples()],
            top2_val: vec![0.0; m.n_samples()],
            owners: vec![Vec::new(); n],
            second_owners: vec![Vec::new(); n],
            arr: 0.0,
            counters: EvalCounters::default(),
            stamp: vec![0; m.n_samples()],
            epoch: 0,
            scratch: EvalScratch::default(),
        };
        ev.rebuild();
        ev
    }

    /// Detaches the maintained caches from the matrix borrow, ending the
    /// borrow. See [`EvaluatorState`].
    pub fn into_state(self) -> EvaluatorState {
        EvaluatorState {
            in_sel: self.in_sel,
            members: self.members,
            top1: self.top1,
            top1_val: self.top1_val,
            top2: self.top2,
            top2_val: self.top2_val,
            owners: self.owners,
            second_owners: self.second_owners,
            arr: self.arr,
            counters: self.counters,
            stamp: self.stamp,
            epoch: self.epoch,
        }
    }

    /// Reattaches a detached state to an **unchanged** matrix (same point
    /// and sample universe). For a matrix whose points changed, use
    /// [`SelectionEvaluator::resume_after_update`].
    ///
    /// # Panics
    ///
    /// Panics if the state's dimensions do not match the matrix.
    pub fn from_state(m: &'a S, st: EvaluatorState) -> Self {
        assert_eq!(st.in_sel.len(), m.n_points(), "state does not match the matrix point count");
        assert_eq!(st.stamp.len(), m.n_samples(), "state does not match the matrix sample count");
        SelectionEvaluator {
            m,
            in_sel: st.in_sel,
            members: st.members,
            top1: st.top1,
            top1_val: st.top1_val,
            top2: st.top2,
            top2_val: st.top2_val,
            owners: st.owners,
            second_owners: st.second_owners,
            arr: st.arr,
            counters: st.counters,
            stamp: st.stamp,
            epoch: st.epoch,
            scratch: EvalScratch::default(),
        }
    }

    /// Reattaches a detached state to a matrix whose **points changed**
    /// (a batch of deletions and/or appended insertions), repairing the
    /// caches incrementally instead of rebuilding.
    ///
    /// `remap` maps the previous point universe to the new one
    /// (`Some(new)` for survivors, `None` for deleted points — exactly
    /// what [`crate::ScoreMatrix::delete_points`] returns); appended
    /// points need no remap entry. Deleted members drop out of the
    /// selection. Only the samples whose cached best or runner-up died
    /// are rescanned (`O(affected · |S|)`); owner lists are rebuilt in
    /// sample order (`O(N)`, the canonical order a fresh rebuild
    /// produces) and `arr` is refolded over the same fixed chunks as a
    /// full rebuild, so the maintained values — `arr` and every
    /// `top1_val`/`top2_val` — are **bit-identical** to
    /// [`SelectionEvaluator::new_with`] on the surviving selection.
    /// (Cached top-point *indices* can differ from a fresh scan's only
    /// when two members tie bit-for-bit on a sample; the tracked values
    /// are order statistics and agree regardless.)
    ///
    /// # Panics
    ///
    /// Panics if `remap` does not cover the previous point universe, maps
    /// out of bounds, or the sample count changed.
    pub fn resume_after_update(m: &'a S, st: EvaluatorState, remap: &[Option<u32>]) -> Self {
        assert_eq!(remap.len(), st.in_sel.len(), "remap must cover the previous point universe");
        let n = m.n_points();
        let n_samples = m.n_samples();
        assert_eq!(st.stamp.len(), n_samples, "sample count must be unchanged across updates");
        let mut members: Vec<u32> = st
            .members
            .iter()
            .filter_map(|&p| remap[p as usize])
            .inspect(|&p| assert!((p as usize) < n, "remap target {p} out of bounds"))
            .collect();
        members.sort_unstable();
        let mut in_sel = vec![false; n];
        for &p in &members {
            in_sel[p as usize] = true;
        }
        let mut ev = SelectionEvaluator {
            m,
            in_sel,
            members,
            top1: st.top1,
            top1_val: st.top1_val,
            top2: st.top2,
            top2_val: st.top2_val,
            owners: st.owners,
            second_owners: st.second_owners,
            arr: 0.0,
            counters: st.counters,
            stamp: vec![0; n_samples],
            epoch: 0,
            scratch: EvalScratch::default(),
        };
        // Classify samples: a dead best point forces a full top-two
        // rescan; a dead runner-up only rescans the runner-up.
        let mut full_rescan: Vec<u32> = Vec::new();
        let mut runner_rescan: Vec<u32> = Vec::new();
        for u in 0..n_samples {
            let t1 = ev.top1[u];
            if t1 == NONE {
                continue;
            }
            match remap[t1 as usize] {
                None => {
                    ev.counters.promotions += 1;
                    full_rescan.push(u as u32);
                }
                Some(nt1) => {
                    ev.top1[u] = nt1;
                    let t2 = ev.top2[u];
                    if t2 != NONE {
                        match remap[t2 as usize] {
                            None => runner_rescan.push(u as u32),
                            Some(nt2) => ev.top2[u] = nt2,
                        }
                    }
                }
            }
        }
        // Batched rescans over the new member set (pure reads, fanned out
        // like scan_runner_ups; per-sample outputs are independent).
        let (matrix, mem) = (ev.m, &ev.members);
        let mut full = vec![(NONE, 0.0, NONE, 0.0); full_rescan.len()];
        par::fill_adaptive(&mut full, mem.len(), |i| {
            top_two(matrix, full_rescan[i] as usize, mem, NONE)
        });
        for (&u32u, (b1, v1, b2, v2)) in full_rescan.iter().zip(full) {
            let u = u32u as usize;
            ev.counters.rescans += 1;
            ev.top1[u] = b1;
            ev.top1_val[u] = v1;
            ev.top2[u] = b2;
            ev.top2_val[u] = v2;
        }
        let top1 = &ev.top1;
        let mut runner = vec![(NONE, 0.0); runner_rescan.len()];
        par::fill_adaptive(&mut runner, mem.len(), |i| {
            let u = runner_rescan[i] as usize;
            let (b2, v2, _, _) = top_two(matrix, u, mem, top1[u]);
            (b2, v2)
        });
        for (&u32u, (b2, v2)) in runner_rescan.iter().zip(runner) {
            let u = u32u as usize;
            ev.counters.rescans += 1;
            ev.top2[u] = b2;
            ev.top2_val[u] = v2;
        }
        ev.resync();
        ev
    }

    /// Reattaches a detached state to a matrix whose **sample axis
    /// grew** (rows appended via `ScoreMatrix::append_samples` — the
    /// point universe must be unchanged), folding only the new rows into
    /// the caches instead of rebuilding.
    ///
    /// Old samples keep their cached best/runner-up (their rows and the
    /// selection are untouched by a sample append); the appended samples
    /// scan the members once (`O(new · |S|)`, fanned out like the other
    /// batched rescans); owner lists rebuild in canonical sample order
    /// and `arr` refolds over the same fixed chunks as a full rebuild —
    /// using the matrix's *re-spread* per-sample weights — so the
    /// maintained `arr` and every tracked value are **bit-identical** to
    /// [`SelectionEvaluator::new_with`] on the grown matrix.
    ///
    /// # Panics
    ///
    /// Panics if the point universe changed or the matrix shrank below
    /// the state's sample count.
    pub fn resume_after_append(m: &'a S, st: EvaluatorState) -> Self {
        assert_eq!(st.in_sel.len(), m.n_points(), "point universe must be unchanged");
        let first_new = st.stamp.len();
        let n_samples = m.n_samples();
        assert!(first_new <= n_samples, "matrix lost samples; appends only grow");
        let mut ev = SelectionEvaluator {
            m,
            in_sel: st.in_sel,
            members: st.members,
            top1: st.top1,
            top1_val: st.top1_val,
            top2: st.top2,
            top2_val: st.top2_val,
            owners: st.owners,
            second_owners: st.second_owners,
            arr: 0.0,
            counters: st.counters,
            stamp: vec![0; n_samples],
            epoch: 0,
            scratch: EvalScratch::default(),
        };
        // Scan the appended rows over the current members (pure reads,
        // fanned out like the update-resume rescans).
        let (matrix, mem) = (ev.m, &ev.members);
        let mut fresh = vec![(NONE, 0.0, NONE, 0.0); n_samples - first_new];
        par::fill_adaptive(&mut fresh, mem.len(), |i| top_two(matrix, first_new + i, mem, NONE));
        for (b1, v1, b2, v2) in fresh {
            ev.counters.rescans += 1;
            ev.top1.push(b1);
            ev.top1_val.push(v1);
            ev.top2.push(b2);
            ev.top2_val.push(v2);
        }
        ev.resync();
        ev
    }

    /// Restores the canonical derived state a fresh rebuild would hold:
    /// owner lists refilled in sample order and `arr` refolded from the
    /// tracked best values over the same fixed chunks as
    /// [`SelectionEvaluator::new_with`] — so after a resync, `arr` is
    /// bit-identical to a rebuild on the current selection. Used by
    /// [`SelectionEvaluator::resume_after_update`] and by
    /// `DynamicEngine`'s empty-batch fast path.
    pub(crate) fn resync(&mut self) {
        let n = self.m.n_points();
        let n_samples = self.m.n_samples();
        self.owners.iter_mut().for_each(Vec::clear);
        self.second_owners.iter_mut().for_each(Vec::clear);
        self.owners.resize_with(n, Vec::new);
        self.second_owners.resize_with(n, Vec::new);
        for u in 0..n_samples {
            if self.top1[u] != NONE {
                self.owners[self.top1[u] as usize].push(u as u32);
            }
            if self.top2[u] != NONE {
                self.second_owners[self.top2[u] as usize].push(u as u32);
            }
        }
        let (top1_val, m) = (&self.top1_val, self.m);
        // Identical fold shape to `rebuild`: lane-decomposed sum per fixed
        // chunk, chunk partials added in order.
        let parts = par::map_chunks(n_samples, par::CHUNK, |range| {
            kernels::lane_sum(range.len(), |j| {
                let u = range.start + j;
                m.weight(u) * (1.0 - top1_val[u] / m.best_value(u))
            })
        });
        self.arr = 0.0;
        for part in parts {
            self.arr += part;
        }
    }

    /// Cached best and runner-up values of sample `u` within the current
    /// selection (0.0 when absent) — diagnostics for equivalence tests.
    #[inline]
    pub fn top_values(&self, u: usize) -> (f64, f64) {
        (self.top1_val[u], self.top2_val[u])
    }

    /// Full O(N·|S|) recomputation of the cached state, fanned out over
    /// fixed sample chunks (bit-identical for any thread count: chunk
    /// partials fold in chunk order, owner lists fill in sample order).
    fn rebuild(&mut self) {
        self.owners.iter_mut().for_each(Vec::clear);
        self.second_owners.iter_mut().for_each(Vec::clear);
        let m = self.m;
        let members = &self.members;
        let chunks = par::map_chunks(m.n_samples(), par::CHUNK, |range| {
            let tops: Vec<_> = range.clone().map(|u| top_two(m, u, members, NONE)).collect();
            // Same lane-decomposed fold shape as `resync`, so an
            // incrementally maintained arr resyncs to exactly this value.
            let arr = kernels::lane_sum(range.len(), |j| {
                let u = range.start + j;
                m.weight(u) * (1.0 - tops[j].1 / m.best_value(u))
            });
            (tops, arr)
        });
        self.arr = 0.0;
        let mut u = 0usize;
        for (tops, arr_part) in chunks {
            self.arr += arr_part;
            for (b1, v1, b2, v2) in tops {
                self.top1[u] = b1;
                self.top1_val[u] = v1;
                self.top2[u] = b2;
                self.top2_val[u] = v2;
                if b1 != NONE {
                    self.owners[b1 as usize].push(u as u32);
                }
                if b2 != NONE {
                    self.second_owners[b2 as usize].push(u as u32);
                }
                u += 1;
            }
        }
    }

    /// Current `arr(S)`.
    #[inline]
    pub fn arr(&self) -> f64 {
        self.arr
    }

    /// Number of points in the underlying score source.
    #[inline]
    pub fn n_points(&self) -> usize {
        self.in_sel.len()
    }

    /// Number of utility samples in the underlying score source.
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.stamp.len()
    }

    /// Current selection size.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the selection is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether point `p` is currently selected.
    #[inline]
    pub fn contains(&self, p: usize) -> bool {
        self.in_sel[p]
    }

    /// Current members, sorted ascending.
    pub fn selection(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.members.iter().map(|&p| p as usize).collect();
        v.sort_unstable();
        v
    }

    /// Writes the current members, sorted ascending, into `out` (cleared
    /// first) — the allocation-free sibling of [`Self::selection`] for
    /// hot loops that re-enumerate the selection every iteration.
    pub fn selection_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.members.iter().map(|&p| p as usize));
        out.sort_unstable();
    }

    /// Instrumentation counters accumulated so far.
    pub fn counters(&self) -> &EvalCounters {
        &self.counters
    }

    /// Resets instrumentation counters.
    pub fn reset_counters(&mut self) {
        self.counters = EvalCounters::default();
    }

    /// `arr(S − {p}) − arr(S)` — the increase in average regret ratio if
    /// `p` were removed. Touches only the samples whose best point is `p`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `p` is not selected.
    pub fn removal_delta(&mut self, p: usize) -> f64 {
        debug_assert!(self.in_sel[p], "removal_delta on unselected point {p}");
        self.counters.delta_evals += 1;
        self.epoch += 1;
        let mut delta = 0.0;
        for &u in &self.owners[p] {
            let u = u as usize;
            if self.top1[u] != p as u32 || self.stamp[u] == self.epoch {
                continue; // lazy-deleted or duplicate entry
            }
            self.stamp[u] = self.epoch;
            self.counters.delta_rows_touched += 1;
            delta +=
                self.m.weight(u) * (self.top1_val[u] - self.top2_val[u]) / self.m.best_value(u);
        }
        delta
    }

    /// `arr(S − {p})` — convenience wrapper around [`Self::removal_delta`].
    pub fn arr_without(&mut self, p: usize) -> f64 {
        self.arr + self.removal_delta(p)
    }

    /// `arr(S ∪ {p}) − arr(S)` (non-positive, by Lemma 1). Touches every
    /// sample once (`O(N)`).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `p` is already selected.
    pub fn addition_delta(&self, p: usize) -> f64 {
        debug_assert!(!self.in_sel[p], "addition_delta on selected point {p}");
        let (m, top1_val) = (self.m, &self.top1_val);
        // Branchless form of `if s > t { delta -= w * (s - t) / b }`: a
        // non-improving sample contributes `-(w * 0.0 / b) == -0.0`, which
        // is an identity on the non-negative lane accumulators, so the sum
        // is bit-identical to the branching loop. Both layouts fold the
        // identical lane shape — the mirror changes memory traffic only.
        match self.m.column_slice(p) {
            // Columnar fast path: stream point p's scores contiguously.
            Some(col) => kernels::lane_sum(col.len(), |u| {
                -(m.weight(u) * (col[u] - top1_val[u]).max(0.0) / m.best_value(u))
            }),
            None => kernels::lane_sum(m.n_samples(), |u| {
                -(m.weight(u) * (m.score(u, p) - top1_val[u]).max(0.0) / m.best_value(u))
            }),
        }
    }

    /// Removes `p` from the selection, updating all cached state.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not selected.
    pub fn remove(&mut self, p: usize) {
        assert!(self.in_sel[p], "cannot remove unselected point {p}");
        self.in_sel[p] = false;
        let pos = self
            .members
            .iter()
            .position(|&q| q as usize == p)
            .expect("member list consistent with in_sel");
        self.members.swap_remove(pos);

        // Samples whose best point was p: promote the runner-up (serial,
        // cheap), then rescan all affected samples for a new runner-up in
        // one parallel batch, and finally apply the results in sample-list
        // order so arr updates fold deterministically. Every buffer below
        // is borrowed from the scratch arena (and returned at the end), so
        // steady-state removals allocate nothing.
        let mut promoted = std::mem::take(&mut self.scratch.promoted);
        promoted.clear();
        promoted.extend_from_slice(&self.owners[p]);
        self.owners[p].clear();
        let mut fresh = std::mem::take(&mut self.scratch.fresh);
        fresh.clear();
        let mut old_vals = std::mem::take(&mut self.scratch.old_vals);
        old_vals.clear();
        for &u32u in &promoted {
            let u = u32u as usize;
            if self.top1[u] != p as u32 {
                continue; // stale entry
            }
            self.counters.promotions += 1;
            old_vals.push(self.top1_val[u]);
            self.top1[u] = self.top2[u];
            self.top1_val[u] = self.top2_val[u];
            if self.top1[u] != NONE {
                self.owners[self.top1[u] as usize].push(u as u32);
            }
            fresh.push(u32u);
        }
        let mut pairs = std::mem::take(&mut self.scratch.pairs);
        self.scan_runner_ups(&fresh, &mut pairs);
        for ((&u32u, &old_val), &(b2, v2)) in fresh.iter().zip(old_vals.iter()).zip(pairs.iter()) {
            let u = u32u as usize;
            self.apply_runner_up(u, b2, v2);
            self.arr += self.m.weight(u) * (old_val - self.top1_val[u]) / self.m.best_value(u);
        }

        // Samples whose runner-up was p: rescan for a new runner-up (the
        // promoted batch above already repaired its own samples). The whole
        // batch is filtered before any repair runs, so lazy-deletion
        // duplicates of one sample all pass the `top2 == p` check — the
        // epoch stamp deduplicates them.
        promoted.clear();
        promoted.extend_from_slice(&self.second_owners[p]);
        self.second_owners[p].clear();
        let mut stale = std::mem::take(&mut self.scratch.stale);
        stale.clear();
        self.epoch += 1;
        for &u32u in &promoted {
            let u = u32u as usize;
            if self.top2[u] != p as u32 || self.stamp[u] == self.epoch {
                continue;
            }
            self.stamp[u] = self.epoch;
            stale.push(u32u);
        }
        self.scan_runner_ups(&stale, &mut pairs);
        for (&u32u, &(b2, v2)) in stale.iter().zip(pairs.iter()) {
            self.apply_runner_up(u32u as usize, b2, v2);
        }
        self.scratch = EvalScratch { promoted, fresh, old_vals, stale, pairs };
    }

    /// Computes, for each listed sample, its new runner-up within the
    /// current members (excluding the sample's best point), writing the
    /// results into `out` (cleared and resized — callers pass a scratch
    /// buffer so the hot loop allocates nothing once capacities warm up).
    /// Pure reads; fans out when the batch is large enough to pay for it.
    /// Per-sample outputs are independent, so chunking never changes
    /// results.
    ///
    /// When the selection is dense (at least a quarter of the points, the
    /// GREEDY-SHRINK regime) and rows are addressable, each rescan streams
    /// the whole sample row in index order instead of gathering through
    /// the member list: removals `swap_remove` the list into a random
    /// permutation, so the gather is a cache miss per member, while the
    /// dense scan is a sequential prefetchable read that skips
    /// non-members. Returned *values* are bit-identical either way (order
    /// statistics of the same multiset); on bit-equal ties the recorded
    /// runner-up *index* may differ between the two scans, which no
    /// consumer observes — deltas and arr use values only, and the
    /// density cutoff depends only on `(|S|, n)`, so serial, parallel,
    /// mirrored, and mirrorless runs all take the same branch.
    fn scan_runner_ups(&self, samples: &[u32], out: &mut Vec<(u32, f64)>) {
        let m = self.m;
        let members = &self.members;
        let top1 = &self.top1;
        let in_sel = &self.in_sel;
        let dense = members.len() * 4 >= in_sel.len();
        out.clear();
        out.resize(samples.len(), (NONE, 0.0));
        par::fill_adaptive(out, members.len(), |i| {
            let u = samples[i] as usize;
            match m.row_slice(u) {
                Some(row) if dense => {
                    let (b2, v2, _, _) = kernels::top_two_dense(row, in_sel, top1[u]);
                    (b2, v2)
                }
                _ => {
                    let (b2, v2, _, _) = top_two(m, u, members, top1[u]);
                    (b2, v2)
                }
            }
        });
    }

    /// Installs a freshly scanned runner-up for sample `u`.
    fn apply_runner_up(&mut self, u: usize, b2: u32, v2: f64) {
        self.counters.rescans += 1;
        self.top2[u] = b2;
        self.top2_val[u] = v2;
        if b2 != NONE {
            self.second_owners[b2 as usize].push(u as u32);
        }
    }

    /// Adds `p` to the selection, updating all cached state in `O(N)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is already selected.
    pub fn add(&mut self, p: usize) {
        assert!(!self.in_sel[p], "cannot add selected point {p}");
        self.in_sel[p] = true;
        self.members.push(p as u32);
        let mut pushed_owner = false;
        let mut pushed_second = false;
        let m = self.m;
        let col = m.column_slice(p);
        for u in 0..m.n_samples() {
            // Columnar fast path mirrors addition_delta's.
            let s = match col {
                Some(c) => c[u],
                None => self.m.score(u, p),
            };
            if self.top1[u] == NONE || s > self.top1_val[u] {
                self.counters.promotions += 1;
                // Old best becomes the runner-up.
                if self.top1[u] != NONE {
                    self.second_owners[self.top1[u] as usize].push(u as u32);
                    pushed_second = true;
                }
                self.top2[u] = self.top1[u];
                self.top2_val[u] = self.top1_val[u];
                let old_val = self.top1_val[u];
                self.top1[u] = p as u32;
                self.top1_val[u] = s;
                self.owners[p].push(u as u32);
                pushed_owner = true;
                self.arr -= self.m.weight(u) * (s - old_val) / self.m.best_value(u);
            } else if self.top2[u] == NONE || s > self.top2_val[u] {
                self.top2[u] = p as u32;
                self.top2_val[u] = s;
                self.second_owners[p].push(u as u32);
                pushed_second = true;
            }
        }
        let _ = (pushed_owner, pushed_second);
    }

    /// Debug helper: recomputes `arr(S)` from scratch and checks it against
    /// the incrementally maintained value. Used by tests.
    pub fn verify_consistency(&self) -> bool {
        let sel = self.selection();
        let fresh = crate::regret::arr_unchecked(self.m, &sel);
        (fresh - self.arr).abs() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regret;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn matrix() -> ScoreMatrix {
        ScoreMatrix::from_rows(
            vec![
                vec![0.9, 0.7, 0.2, 0.4],
                vec![0.6, 1.0, 0.5, 0.2],
                vec![0.2, 0.6, 0.3, 1.0],
                vec![0.1, 0.2, 1.0, 0.9],
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn full_selection_is_zero_regret() {
        let m = matrix();
        let ev = SelectionEvaluator::new_full(&m);
        assert!(ev.arr().abs() < 1e-12);
        assert_eq!(ev.len(), 4);
        assert!(ev.contains(2));
    }

    #[test]
    fn removal_delta_matches_direct_computation() {
        let m = matrix();
        let mut ev = SelectionEvaluator::new_full(&m);
        for p in 0..4 {
            let expected =
                regret::arr_unchecked(&m, &(0..4).filter(|&q| q != p).collect::<Vec<_>>());
            let got = ev.arr() + ev.removal_delta(p);
            assert!((got - expected).abs() < 1e-12, "point {p}: {got} vs {expected}");
        }
    }

    #[test]
    fn remove_updates_arr_incrementally() {
        let m = matrix();
        let mut ev = SelectionEvaluator::new_full(&m);
        ev.remove(1);
        assert!(ev.verify_consistency());
        ev.remove(3);
        assert!(ev.verify_consistency());
        assert_eq!(ev.selection(), vec![0, 2]);
        let direct = regret::arr_unchecked(&m, &[0, 2]);
        assert!((ev.arr() - direct).abs() < 1e-12);
    }

    #[test]
    fn remove_down_to_empty() {
        let m = matrix();
        let mut ev = SelectionEvaluator::new_full(&m);
        for p in 0..4 {
            ev.remove(p);
        }
        assert!(ev.is_empty());
        assert!((ev.arr() - 1.0).abs() < 1e-12, "empty selection has arr = 1");
    }

    #[test]
    fn add_matches_direct_computation() {
        let m = matrix();
        let mut ev = SelectionEvaluator::new_with(&m, &[0]);
        assert!(ev.verify_consistency());
        let delta = ev.addition_delta(3);
        ev.add(3);
        assert!(ev.verify_consistency());
        let direct = regret::arr_unchecked(&m, &[0, 3]);
        assert!((ev.arr() - direct).abs() < 1e-12);
        let direct0 = regret::arr_unchecked(&m, &[0]);
        assert!((delta - (direct - direct0)).abs() < 1e-12);
    }

    #[test]
    fn interleaved_adds_and_removes_stay_consistent() {
        let m = matrix();
        let mut ev = SelectionEvaluator::new_with(&m, &[0, 1]);
        ev.add(2);
        ev.remove(0);
        ev.add(3);
        ev.remove(2);
        assert!(ev.verify_consistency());
        assert_eq!(ev.selection(), vec![1, 3]);
    }

    #[test]
    fn counters_accumulate() {
        let m = matrix();
        let mut ev = SelectionEvaluator::new_full(&m);
        ev.removal_delta(0);
        ev.remove(0);
        let c = ev.counters().clone();
        assert!(c.delta_evals == 1);
        assert!(c.promotions >= 1);
        ev.reset_counters();
        assert_eq!(ev.counters(), &EvalCounters::default());
    }

    #[test]
    fn duplicate_second_owner_entries_rescan_once() {
        // Drive one sample into second_owners[2] twice via lazy deletion:
        // rebuild pushes it, then the rescan after remove(0) pushes again.
        let m = ScoreMatrix::from_rows(vec![vec![0.9, 0.8, 0.7, 0.6]], None).unwrap();
        let mut ev = SelectionEvaluator::new_with(&m, &[1, 2]);
        ev.add(0);
        ev.add(3);
        ev.remove(0);
        ev.reset_counters();
        ev.remove(2);
        assert!(ev.verify_consistency());
        assert_eq!(ev.counters().rescans, 1, "duplicate entries must dedupe to one rescan");
    }

    #[test]
    fn state_round_trip_preserves_everything() {
        let m = matrix();
        let mut ev = SelectionEvaluator::new_with(&m, &[0, 2, 3]);
        ev.remove(2);
        let arr = ev.arr();
        let sel = ev.selection();
        let st = ev.into_state();
        assert_eq!(st.selection(), sel);
        assert_eq!(st.arr().to_bits(), arr.to_bits());
        assert_eq!(st.len(), 2);
        assert!(!st.is_empty());
        let mut ev = SelectionEvaluator::from_state(&m, st);
        assert_eq!(ev.arr().to_bits(), arr.to_bits());
        ev.add(1);
        assert!(ev.verify_consistency());
    }

    /// Resume after a matrix update must reproduce `new_with` on the
    /// surviving selection bit-for-bit (arr and tracked values).
    fn assert_resume_matches_rebuild(m: &ScoreMatrix, resumed: &SelectionEvaluator<ScoreMatrix>) {
        let fresh = SelectionEvaluator::new_with(m, &resumed.selection());
        assert_eq!(resumed.arr().to_bits(), fresh.arr().to_bits(), "arr diverged from rebuild");
        for u in 0..m.n_samples() {
            let (v1, v2) = resumed.top_values(u);
            let (f1, f2) = fresh.top_values(u);
            assert_eq!(v1.to_bits(), f1.to_bits(), "top1 value of sample {u}");
            assert_eq!(v2.to_bits(), f2.to_bits(), "top2 value of sample {u}");
        }
    }

    #[test]
    fn resume_after_deletion_rescans_only_affected() {
        let m = matrix();
        let ev = SelectionEvaluator::new_with(&m, &[0, 1, 3]);
        let st = ev.into_state();
        let mut m2 = m.clone();
        let remap = m2.delete_points(&[1]).unwrap();
        let resumed = SelectionEvaluator::resume_after_update(&m2, st, &remap);
        // Selection {0, 3} remapped to {0, 1}: swap-remove moved point 3
        // into the freed slot.
        assert_eq!(resumed.selection(), vec![0, 1]);
        assert!(resumed.verify_consistency());
        assert_resume_matches_rebuild(&m2, &resumed);
    }

    #[test]
    fn resume_after_insertion_keeps_selection_and_refolds_arr() {
        let m = matrix();
        let ev = SelectionEvaluator::new_with(&m, &[1, 2]);
        let st = ev.into_state();
        let mut m2 = m.clone();
        // The new point beats every sample's old best, shifting best_value.
        m2.insert_points(&[vec![1.5, 1.5, 1.5, 1.5]]).unwrap();
        let remap: Vec<Option<u32>> = (0..4).map(|p| Some(p as u32)).collect();
        let mut resumed = SelectionEvaluator::resume_after_update(&m2, st, &remap);
        assert_eq!(resumed.selection(), vec![1, 2]);
        assert!(resumed.verify_consistency());
        assert_resume_matches_rebuild(&m2, &resumed);
        // The appended point is addressable immediately.
        let d = resumed.addition_delta(4);
        resumed.add(4);
        assert!(resumed.verify_consistency());
        assert!(d < 0.0);
    }

    #[test]
    fn resume_after_append_folds_only_new_rows() {
        let m = matrix();
        let mut ev = SelectionEvaluator::new_with(&m, &[0, 2]);
        ev.reset_counters();
        let st = ev.into_state();
        let mut m2 = m.clone();
        m2.append_sample_rows(&[vec![0.1, 0.9, 0.8, 0.2], vec![0.7, 0.2, 0.1, 0.6]]).unwrap();
        let resumed = SelectionEvaluator::resume_after_append(&m2, st);
        assert_eq!(resumed.selection(), vec![0, 2]);
        assert_eq!(resumed.n_samples(), 6);
        // Only the two appended rows were scanned.
        assert_eq!(resumed.counters().rescans, 2);
        assert!(resumed.verify_consistency());
        assert_resume_matches_rebuild(&m2, &resumed);
        // The resumed evaluator stays fully operational.
        let mut resumed = resumed;
        let d = resumed.addition_delta(3);
        resumed.add(3);
        assert!(d <= 0.0);
        assert!(resumed.verify_consistency());
    }

    #[test]
    fn resume_after_append_handles_empty_selection_and_mirrorless() {
        let m = matrix().drop_column_mirror();
        let st = SelectionEvaluator::new_with(&m, &[]).into_state();
        let mut m2 = m.clone();
        m2.append_sample_rows(&[vec![0.5, 0.4, 0.3, 0.2]]).unwrap();
        let resumed = SelectionEvaluator::resume_after_append(&m2, st);
        assert!(resumed.is_empty());
        assert!((resumed.arr() - 1.0).abs() < 1e-12);
        assert_resume_matches_rebuild(&m2, &resumed);
        // A no-growth resume is a pure resync.
        let st = resumed.into_state();
        let resumed = SelectionEvaluator::resume_after_append(&m2, st);
        assert_resume_matches_rebuild(&m2, &resumed);
    }

    #[test]
    fn resume_after_append_fuzz_matches_rebuild() {
        let mut rng = StdRng::seed_from_u64(4242);
        for trial in 0..15 {
            let n_points = rng.gen_range(3..10);
            let n0 = rng.gen_range(2..12);
            let rows: Vec<Vec<f64>> = (0..n0)
                .map(|_| (0..n_points).map(|_| rng.gen_range(0.01..1.0)).collect())
                .collect();
            let mut m = ScoreMatrix::from_rows(rows, None).unwrap();
            let sel: Vec<usize> = (0..n_points).filter(|_| rng.gen_bool(0.5)).collect();
            let mut st = SelectionEvaluator::new_with(&m, &sel).into_state();
            for _step in 0..5 {
                let new_rows: Vec<Vec<f64>> = (0..rng.gen_range(1..6))
                    .map(|_| (0..n_points).map(|_| rng.gen_range(0.01..1.0)).collect())
                    .collect();
                m.append_sample_rows(&new_rows).unwrap();
                let resumed = SelectionEvaluator::resume_after_append(&m, st);
                assert!(resumed.verify_consistency(), "trial {trial}: drifted");
                assert_resume_matches_rebuild(&m, &resumed);
                st = resumed.into_state();
            }
        }
    }

    #[test]
    fn resume_handles_emptied_selection_and_empty_previous() {
        let m = matrix();
        // All members deleted -> empty selection, arr = 1.
        let st = SelectionEvaluator::new_with(&m, &[1]).into_state();
        let mut m2 = m.clone();
        let remap = m2.delete_points(&[1]).unwrap();
        let resumed = SelectionEvaluator::resume_after_update(&m2, st, &remap);
        assert!(resumed.is_empty());
        assert!((resumed.arr() - 1.0).abs() < 1e-12);
        assert_resume_matches_rebuild(&m2, &resumed);
        // Previously empty selection stays empty.
        let st = SelectionEvaluator::new_with(&m, &[]).into_state();
        let mut m3 = m.clone();
        let remap = m3.delete_points(&[0]).unwrap();
        let resumed = SelectionEvaluator::resume_after_update(&m3, st, &remap);
        assert!(resumed.is_empty());
        assert!((resumed.arr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resume_fuzz_matches_rebuild_and_stays_mutable() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..20 {
            let n_points = rng.gen_range(4..14);
            let n_samples = rng.gen_range(3..25);
            let rows: Vec<Vec<f64>> = (0..n_samples)
                .map(|_| (0..n_points).map(|_| rng.gen_range(0.01..1.0)).collect())
                .collect();
            let mut m = ScoreMatrix::from_rows(rows, None).unwrap();
            let sel: Vec<usize> = (0..n_points).filter(|_| rng.gen_bool(0.4)).collect();
            let mut st = SelectionEvaluator::new_with(&m, &sel).into_state();
            for _step in 0..6 {
                let n = m.n_points();
                let remap = if rng.gen_bool(0.5) && n > 2 {
                    let d = rng.gen_range(0..n);
                    m.delete_points(&[d]).unwrap()
                } else {
                    let cols: Vec<Vec<f64>> = (0..rng.gen_range(1..3))
                        .map(|_| (0..n_samples).map(|_| rng.gen_range(0.01..1.0)).collect())
                        .collect();
                    m.insert_points(&cols).unwrap();
                    (0..n).map(|p| Some(p as u32)).collect()
                };
                let mut resumed = SelectionEvaluator::resume_after_update(&m, st, &remap);
                assert!(resumed.verify_consistency(), "trial {trial}: resume drifted");
                assert_resume_matches_rebuild(&m, &resumed);
                // The resumed evaluator must remain fully operational.
                let outside: Vec<usize> =
                    (0..m.n_points()).filter(|&p| !resumed.contains(p)).collect();
                if let Some(&p) = outside.first() {
                    resumed.add(p);
                    assert!(resumed.verify_consistency());
                }
                st = resumed.into_state();
            }
        }
    }

    #[test]
    fn randomized_mutation_fuzz() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..30 {
            let n_points = rng.gen_range(2..12);
            let n_samples = rng.gen_range(1..20);
            let rows: Vec<Vec<f64>> = (0..n_samples)
                .map(|_| (0..n_points).map(|_| rng.gen_range(0.01..1.0)).collect())
                .collect();
            let m = ScoreMatrix::from_rows(rows, None).unwrap();
            let mut ev = SelectionEvaluator::new_full(&m);
            for _step in 0..40 {
                let sel = ev.selection();
                if !sel.is_empty() && (ev.len() == n_points || rng.gen_bool(0.6)) {
                    let p = sel[rng.gen_range(0..sel.len())];
                    let predicted = ev.arr() + ev.removal_delta(p);
                    ev.remove(p);
                    assert!(
                        (ev.arr() - predicted).abs() < 1e-9,
                        "trial {trial}: removal delta mismatch"
                    );
                } else {
                    let outside: Vec<usize> = (0..n_points).filter(|&p| !ev.contains(p)).collect();
                    if outside.is_empty() {
                        continue;
                    }
                    let p = outside[rng.gen_range(0..outside.len())];
                    let predicted = ev.arr() + ev.addition_delta(p);
                    ev.add(p);
                    assert!(
                        (ev.arr() - predicted).abs() < 1e-9,
                        "trial {trial}: addition delta mismatch"
                    );
                }
                assert!(ev.verify_consistency(), "trial {trial}: cache drifted");
            }
        }
    }
}
