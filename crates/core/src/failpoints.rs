//! Deterministic fault injection for chaos testing.
//!
//! A *failpoint* is a named site in production code — `fail_point("x")?`
//! — that does nothing until a test arms it. Armed sites fire a chosen
//! [`FailAction`] (error, panic, or delay) a bounded or unbounded number
//! of times, letting tests drive a writer into failure at an exact
//! moment and then pin the recovery invariants: the serving layer's
//! chaos tests arm the append, re-harvest, and publish paths and prove
//! the previous generation keeps serving bit-identical answers.
//!
//! The registry is process-global (sites are reached from deep inside
//! engine code where threading a handle through would distort every
//! signature), so tests that arm sites must serialize with each other.
//! The unarmed fast path is a single relaxed atomic load — cheap enough
//! to leave the hooks compiled into release builds, which is the point:
//! the *tested* binary is the *shipped* binary.
//!
//! ```
//! use fam_core::failpoints::{self, FailAction};
//!
//! fn fallible_step() -> fam_core::Result<()> {
//!     failpoints::fail_point("docs.step")?;
//!     Ok(())
//! }
//!
//! assert!(fallible_step().is_ok());
//! {
//!     let _guard = failpoints::arm("docs.step", FailAction::Error);
//!     assert!(fallible_step().is_err());
//! } // guard dropped: disarmed
//! assert!(fallible_step().is_ok());
//! assert!(failpoints::triggered("docs.step") >= 1);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::error::{FamError, Result};

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Return [`FamError::FaultInjected`] from the site.
    Error,
    /// Panic at the site (exercises unwind-safety of the surrounding
    /// code; the serving layer must answer 500 and keep the previous
    /// generation intact).
    Panic,
    /// Sleep for the given duration, then continue normally (models a
    /// slow dependency; used to pin deadline enforcement and that
    /// readers never wait on a stalled writer).
    Delay(Duration),
}

#[derive(Debug)]
struct Armed {
    action: FailAction,
    /// Remaining firings before the site auto-disarms; `None` fires
    /// until explicitly disarmed.
    remaining: Option<u64>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    armed: BTreeMap<String, Armed>,
    /// Lifetime count of firings per site (survives disarm; cleared by
    /// [`reset`]). Only armed evaluations count — the unarmed fast path
    /// does not take the lock.
    triggered: BTreeMap<String, u64>,
}

/// Count of currently armed sites: the fast path skips the registry
/// lock entirely while this is zero.
static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);

fn registry() -> MutexGuard<'static, RegistryInner> {
    static REGISTRY: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    // The registry holds plain maps; any state is valid, so a poisoned
    // lock (a panic while armed — the Panic action's whole purpose)
    // recovers by taking the inner value.
    match REGISTRY.get_or_init(Mutex::default).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Disarms `site` when dropped, scoping an [`arm`] to a test block.
#[derive(Debug)]
#[must_use = "dropping the guard disarms the failpoint immediately"]
pub struct FailpointGuard {
    site: String,
}

impl Drop for FailpointGuard {
    fn drop(&mut self) {
        disarm(&self.site);
    }
}

/// Arms `site` to fire `action` on every evaluation until the returned
/// guard drops (or [`disarm`] is called).
pub fn arm(site: &str, action: FailAction) -> FailpointGuard {
    arm_inner(site, action, None)
}

/// Arms `site` to fire `action` exactly `times` evaluations, then
/// auto-disarm — recovery tests arm one failure and let the retry
/// succeed. The guard still disarms early on drop.
pub fn arm_times(site: &str, action: FailAction, times: u64) -> FailpointGuard {
    arm_inner(site, action, Some(times))
}

fn arm_inner(site: &str, action: FailAction, remaining: Option<u64>) -> FailpointGuard {
    let mut reg = registry();
    if reg.armed.insert(site.to_string(), Armed { action, remaining }).is_none() {
        ARMED_COUNT.fetch_add(1, Ordering::Release);
    }
    FailpointGuard { site: site.to_string() }
}

/// Disarms `site` (no-op when not armed). Trigger counts are retained.
pub fn disarm(site: &str) {
    let mut reg = registry();
    if reg.armed.remove(site).is_some() {
        ARMED_COUNT.fetch_sub(1, Ordering::Release);
    }
}

/// Disarms every site and clears all trigger counts.
pub fn reset() {
    let mut reg = registry();
    let n = reg.armed.len();
    reg.armed.clear();
    reg.triggered.clear();
    ARMED_COUNT.fetch_sub(n, Ordering::Release);
}

/// Lifetime count of armed firings of `site` (see `RegistryInner`).
pub fn triggered(site: &str) -> u64 {
    registry().triggered.get(site).copied().unwrap_or(0)
}

/// A named fault-injection site.
///
/// Unarmed (the production state) this is one relaxed atomic load.
/// Armed, it fires the configured [`FailAction`] and counts the firing.
///
/// # Errors
///
/// Returns [`FamError::FaultInjected`] when armed with
/// [`FailAction::Error`].
///
/// # Panics
///
/// Panics when armed with [`FailAction::Panic`].
pub fn fail_point(site: &str) -> Result<()> {
    if ARMED_COUNT.load(Ordering::Acquire) == 0 {
        return Ok(());
    }
    let action = {
        let mut reg = registry();
        let Some(armed) = reg.armed.get_mut(site) else { return Ok(()) };
        let action = armed.action;
        let expired = match &mut armed.remaining {
            Some(0) => true,
            Some(n) => {
                *n -= 1;
                false
            }
            None => false,
        };
        if expired {
            reg.armed.remove(site);
            ARMED_COUNT.fetch_sub(1, Ordering::Release);
            return Ok(());
        }
        *reg.triggered.entry(site.to_string()).or_insert(0) += 1;
        if let Some(0) = reg.armed.get(site).and_then(|a| a.remaining) {
            reg.armed.remove(site);
            ARMED_COUNT.fetch_sub(1, Ordering::Release);
        }
        action
    };
    match action {
        FailAction::Error => Err(FamError::FaultInjected { site: site.to_string() }),
        FailAction::Panic => panic!("failpoint `{site}` armed to panic"),
        FailAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that arm sites serialize.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn unarmed_sites_are_free_and_ok() {
        let _l = lock();
        reset();
        assert!(fail_point("never.armed").is_ok());
        assert_eq!(triggered("never.armed"), 0);
    }

    #[test]
    fn armed_error_fires_until_guard_drops() {
        let _l = lock();
        reset();
        {
            let _g = arm("t.err", FailAction::Error);
            let err = fail_point("t.err").unwrap_err();
            assert!(
                matches!(err, FamError::FaultInjected { ref site } if site == "t.err"),
                "{err}"
            );
            assert!(err.to_string().contains("t.err"), "{err}");
            assert!(fail_point("t.err").is_err());
            // Other sites are unaffected.
            assert!(fail_point("t.other").is_ok());
        }
        assert!(fail_point("t.err").is_ok(), "guard drop must disarm");
        assert_eq!(triggered("t.err"), 2);
    }

    #[test]
    fn arm_times_auto_disarms_after_the_budget() {
        let _l = lock();
        reset();
        let _g = arm_times("t.twice", FailAction::Error, 2);
        assert!(fail_point("t.twice").is_err());
        assert!(fail_point("t.twice").is_err());
        assert!(fail_point("t.twice").is_ok(), "third evaluation is past the budget");
        assert!(fail_point("t.twice").is_ok());
        assert_eq!(triggered("t.twice"), 2);
    }

    #[test]
    fn delay_fires_then_continues() {
        let _l = lock();
        reset();
        let _g = arm("t.slow", FailAction::Delay(Duration::from_millis(30)));
        let t0 = std::time::Instant::now();
        assert!(fail_point("t.slow").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(triggered("t.slow"), 1);
    }

    #[test]
    fn panic_action_panics_and_registry_recovers() {
        let _l = lock();
        reset();
        {
            let _g = arm("t.boom", FailAction::Panic);
            let r = std::panic::catch_unwind(|| fail_point("t.boom"));
            assert!(r.is_err(), "armed Panic must panic");
        }
        // The poisoned registry lock recovers; sites stay usable.
        assert!(fail_point("t.boom").is_ok());
        assert_eq!(triggered("t.boom"), 1);
        let _g = arm("t.after", FailAction::Error);
        assert!(fail_point("t.after").is_err());
    }

    #[test]
    fn rearming_replaces_the_action() {
        let _l = lock();
        reset();
        let _a = arm("t.swap", FailAction::Error);
        let _b = arm("t.swap", FailAction::Delay(Duration::from_millis(1)));
        assert!(fail_point("t.swap").is_ok(), "re-arm replaces Error with Delay");
        reset();
        assert_eq!(triggered("t.swap"), 0, "reset clears trigger counts");
    }
}
