//! Streamed (matrix-free) regret evaluation.
//!
//! Section III-D-3 of the paper notes that when utility functions have a
//! compact parametric form, the `O(nN)` score matrix can be traded for
//! `O(d(N + n))` space by recomputing scores on demand. This module goes
//! one step further for *evaluation*: it computes regret metrics of a
//! fixed selection from a stream of sampled utility functions, storing
//! only one regret ratio per sample — which is how the paper's Figure 12
//! re-checks percentile distributions with N = 1,000,000 users.

use rand::RngCore;

use crate::dataset::Dataset;
use crate::distribution::UtilityDistribution;
use crate::error::{FamError, Result};
use crate::kernels;
use crate::regret::RegretReport;
use crate::stats;

/// Per-sample regret ratios of `selection`, computed on the fly from
/// freshly sampled utility functions (no score matrix).
///
/// Samples whose best database utility is non-positive are skipped (they
/// carry no well-defined regret ratio); the returned vector may therefore
/// be slightly shorter than `n_samples` for degenerate distributions.
///
/// # Errors
///
/// Returns an error for invalid selections or `n_samples == 0`.
pub fn streamed_rr(
    dataset: &Dataset,
    selection: &[usize],
    dist: &dyn UtilityDistribution,
    n_samples: usize,
    rng: &mut dyn RngCore,
) -> Result<Vec<f64>> {
    if n_samples == 0 {
        return Err(FamError::InvalidParameter {
            name: "n_samples",
            message: "must be at least 1".into(),
        });
    }
    dataset.validate_selection(selection)?;
    let mut in_sel = vec![false; dataset.len()];
    for &p in selection {
        in_sel[p] = true;
    }
    let mut rrs = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let f = dist.sample(rng);
        let mut best = 0.0f64;
        let mut sat = 0.0f64;
        for (idx, p) in dataset.points().enumerate() {
            let u = f.utility(idx, p);
            if u > best {
                best = u;
            }
            if in_sel[idx] && u > sat {
                sat = u;
            }
        }
        if best > 0.0 {
            rrs.push(1.0 - sat / best);
        }
    }
    Ok(rrs)
}

/// Streamed [`RegretReport`] plus regret ratios at the requested user
/// percentiles — everything Figure 12 needs in one pass.
///
/// # Errors
///
/// See [`streamed_rr`]; additionally fails if every sample was degenerate.
pub fn streamed_report(
    dataset: &Dataset,
    selection: &[usize],
    dist: &dyn UtilityDistribution,
    n_samples: usize,
    percentiles: &[f64],
    rng: &mut dyn RngCore,
) -> Result<(RegretReport, Vec<f64>)> {
    let mut rrs = streamed_rr(dataset, selection, dist, n_samples, rng)?;
    if rrs.is_empty() {
        return Err(FamError::DegenerateUtility { sample: 0 });
    }
    let arr = stats::mean(&rrs);
    let vrr = stats::variance(&rrs);
    // `max` is exact under any grouping, so the kernel lane shape returns
    // the same bits as a sequential fold while keeping D001/K001 clean.
    let mrr = kernels::lane_max(0.0, rrs.len(), |i| rrs[i]);
    rrs.sort_by(f64::total_cmp);
    let pct = percentiles.iter().map(|&q| stats::percentile_sorted(&rrs, q)).collect();
    Ok((RegretReport { arr, vrr, std_dev: vrr.sqrt(), mrr }, pct))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::UniformLinear;
    use crate::regret;
    use crate::scores::ScoreMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        Dataset::from_rows(vec![vec![0.9, 0.1], vec![0.5, 0.5], vec![0.1, 0.9], vec![0.7, 0.4]])
            .unwrap()
    }

    #[test]
    fn streamed_matches_matrix_based_estimate() {
        let ds = dataset();
        let dist = UniformLinear::new(2).unwrap();
        let sel = vec![0, 2];
        let mut rng = StdRng::seed_from_u64(1);
        let m = ScoreMatrix::from_distribution(&ds, &dist, 40_000, &mut rng).unwrap();
        let matrix_arr = regret::arr(&m, &sel).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let (rep, pct) =
            streamed_report(&ds, &sel, &dist, 40_000, &[50.0, 100.0], &mut rng).unwrap();
        assert!(
            (rep.arr - matrix_arr).abs() < 0.005,
            "streamed {} vs matrix {matrix_arr}",
            rep.arr
        );
        assert!(pct[0] <= pct[1]);
        assert!(rep.mrr <= 1.0 && rep.mrr >= pct[1] - 1e-12);
    }

    #[test]
    fn full_selection_streams_zero() {
        let ds = dataset();
        let dist = UniformLinear::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let rrs = streamed_rr(&ds, &[0, 1, 2, 3], &dist, 500, &mut rng).unwrap();
        assert_eq!(rrs.len(), 500);
        assert!(rrs.iter().all(|r| r.abs() < 1e-12));
    }

    #[test]
    fn validation() {
        let ds = dataset();
        let dist = UniformLinear::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(streamed_rr(&ds, &[], &dist, 10, &mut rng).is_err());
        assert!(streamed_rr(&ds, &[9], &dist, 10, &mut rng).is_err());
        assert!(streamed_rr(&ds, &[0], &dist, 0, &mut rng).is_err());
    }
}
