//! The result type shared by all selection algorithms.

use std::time::Duration;

use crate::error::{FamError, Result};
use crate::regret::{self, RegretReport};
use crate::scores::ScoreSource;

/// Validates a prospective selection or warm-start seed against a point
/// universe of size `n_points`: every index in bounds, no duplicates.
/// `name` labels the offending parameter in error messages.
///
/// Shared by the algorithms' seeded entry points, `DynamicEngine`, and
/// the regret metrics, so the validation rules stay single-sourced.
///
/// # Errors
///
/// Returns [`FamError::IndexOutOfBounds`] or
/// [`FamError::InvalidParameter`] on the first violation.
pub fn validate_indices(indices: &[usize], n_points: usize, name: &'static str) -> Result<()> {
    let mut seen = vec![false; n_points];
    for &p in indices {
        if p >= n_points {
            return Err(FamError::IndexOutOfBounds { index: p, len: n_points });
        }
        if seen[p] {
            return Err(FamError::InvalidParameter {
                name,
                message: format!("duplicate point index {p}"),
            });
        }
        seen[p] = true;
    }
    Ok(())
}

/// A set of `k` selected point indices together with bookkeeping about how
/// it was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Selected point indices, sorted ascending.
    pub indices: Vec<usize>,
    /// Name of the algorithm that produced the selection.
    pub algorithm: &'static str,
    /// Query time as defined by the paper (excludes shared preprocessing
    /// unless the algorithm's accounting says otherwise; see DESIGN.md).
    pub query_time: Duration,
    /// The algorithm's own estimate of `arr(S)` at termination, when it
    /// computes one (e.g. GREEDY-SHRINK, DP); `None` for oblivious
    /// baselines like SKY-DOM.
    pub objective: Option<f64>,
}

impl Selection {
    /// Creates a selection, sorting the indices.
    pub fn new(mut indices: Vec<usize>, algorithm: &'static str) -> Self {
        indices.sort_unstable();
        Selection { indices, algorithm, query_time: Duration::ZERO, objective: None }
    }

    /// Sets the measured query time.
    #[must_use]
    pub fn with_query_time(mut self, t: Duration) -> Self {
        self.query_time = t;
        self
    }

    /// Sets the algorithm-reported objective value.
    #[must_use]
    pub fn with_objective(mut self, v: f64) -> Self {
        self.objective = Some(v);
        self
    }

    /// Output size `k`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when no point was selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Evaluates all regret metrics of this selection against a score
    /// matrix (typically a fresh evaluation sample, not the one used to
    /// compute the selection).
    ///
    /// # Errors
    ///
    /// Returns an error if the selection is invalid for the matrix.
    pub fn evaluate<S: ScoreSource + ?Sized>(&self, m: &S) -> Result<RegretReport> {
        regret::report(m, &self.indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scores::ScoreMatrix;

    #[test]
    fn indices_are_sorted() {
        let s = Selection::new(vec![3, 1, 2], "test");
        assert_eq!(s.indices, vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.algorithm, "test");
    }

    #[test]
    fn builders_attach_metadata() {
        let s = Selection::new(vec![0], "x")
            .with_query_time(Duration::from_millis(5))
            .with_objective(0.25);
        assert_eq!(s.query_time, Duration::from_millis(5));
        assert_eq!(s.objective, Some(0.25));
    }

    #[test]
    fn evaluate_against_matrix() {
        let m = ScoreMatrix::from_rows(vec![vec![1.0, 0.5], vec![0.5, 1.0]], None).unwrap();
        let s = Selection::new(vec![0], "x");
        let rep = s.evaluate(&m).unwrap();
        assert!((rep.arr - 0.25).abs() < 1e-12);
        let bad = Selection::new(vec![7], "x");
        assert!(bad.evaluate(&m).is_err());
    }
}
