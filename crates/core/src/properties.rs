//! Structural properties of `arr(·)`: supermodularity, monotonicity, and
//! steepness (Definitions 6–8, Theorems 2–3).
//!
//! These are used by the test suite to validate Theorem 2 / Lemma 1 on
//! arbitrary instances, and by the experiment harness to report the
//! theoretical approximation bound of GREEDY-SHRINK.

use crate::error::Result;
use crate::regret::arr_unchecked;
use crate::scores::ScoreSource;

/// Marginal decrease `d(x, X) = arr(X − {x}) − arr(X)` (Definition 8).
/// `x` must be a member of `set`; `set` is given as indices.
pub fn marginal_decrease<S: ScoreSource + ?Sized>(m: &S, x: usize, set: &[usize]) -> f64 {
    debug_assert!(set.contains(&x));
    let without: Vec<usize> = set.iter().copied().filter(|&q| q != x).collect();
    arr_unchecked(m, &without) - arr_unchecked(m, set)
}

/// Steepness of `arr(·)` (Definition 8):
/// `s = max_{x : d(x,{x}) > 0} (d(x,{x}) − d(x,U)) / d(x,{x})`,
/// with `U` the full point universe.
///
/// Returns 0 when no point has positive singleton decrease (a degenerate
/// constant function).
pub fn steepness<S: ScoreSource + ?Sized>(m: &S) -> f64 {
    let universe: Vec<usize> = (0..m.n_points()).collect();
    let mut s = 0.0f64;
    for x in 0..m.n_points() {
        let d_single = marginal_decrease(m, x, &[x]);
        if d_single <= 0.0 {
            continue;
        }
        let d_full = marginal_decrease(m, x, &universe);
        s = s.max((d_single - d_full) / d_single);
    }
    s
}

/// GREEDY-SHRINK's theoretical approximation ratio for a function of
/// steepness `s` (Theorem 3, following Il'ev): `(e^t − 1)/t` with
/// `t = s/(1−s)`. Tends to 1 as `s → 0` and diverges as `s → 1`.
///
/// Returns `f64::INFINITY` for `s >= 1`.
pub fn approximation_bound(s: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&s));
    if s >= 1.0 {
        return f64::INFINITY;
    }
    if s <= 0.0 {
        return 1.0;
    }
    let t = s / (1.0 - s);
    if t < 1e-9 {
        // lim_{t->0} (e^t - 1)/t = 1; use the series for stability.
        return 1.0 + t / 2.0;
    }
    (t.exp() - 1.0) / t
}

/// A violation of supermodularity found by [`check_supermodularity`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupermodularityViolation {
    /// The smaller set `S`.
    pub small: Vec<usize>,
    /// The larger set `T ⊇ S`.
    pub large: Vec<usize>,
    /// The element `x ∉ T` that was added to both.
    pub x: usize,
    /// `arr(S ∪ {x}) − arr(S)`.
    pub small_delta: f64,
    /// `arr(T ∪ {x}) − arr(T)`.
    pub large_delta: f64,
}

/// Exhaustively checks the supermodularity inequality
/// `arr(S ∪ {x}) − arr(S) ≤ arr(T ∪ {x}) − arr(T)` for **all** chains
/// `S ⊆ T` and `x ∉ T` of a small universe (Theorem 2). Returns the first
/// violation, if any. Exponential in `n_points`; intended for `n ≤ ~12`.
pub fn check_supermodularity<S: ScoreSource + ?Sized>(
    m: &S,
    tolerance: f64,
) -> Option<SupermodularityViolation> {
    let n = m.n_points();
    assert!(n <= 16, "exhaustive check is exponential; use small universes");
    let arr_of = |mask: u32| -> f64 {
        let sel: Vec<usize> = (0..n).filter(|&p| mask & (1 << p) != 0).collect();
        arr_unchecked(m, &sel)
    };
    // Precompute arr for all subsets.
    let total = 1u32 << n;
    let mut table = vec![0.0f64; total as usize];
    for mask in 0..total {
        table[mask as usize] = arr_of(mask);
    }
    for t_mask in 0..total {
        // S ranges over submasks of T.
        let mut s_mask = t_mask;
        loop {
            for x in 0..n {
                let bit = 1u32 << x;
                if t_mask & bit != 0 {
                    continue;
                }
                let small_delta = table[(s_mask | bit) as usize] - table[s_mask as usize];
                let large_delta = table[(t_mask | bit) as usize] - table[t_mask as usize];
                if small_delta > large_delta + tolerance {
                    let to_vec = |mask: u32| (0..n).filter(|&p| mask & (1 << p) != 0).collect();
                    return Some(SupermodularityViolation {
                        small: to_vec(s_mask),
                        large: to_vec(t_mask),
                        x,
                        small_delta,
                        large_delta,
                    });
                }
            }
            if s_mask == 0 {
                break;
            }
            s_mask = (s_mask - 1) & t_mask;
        }
    }
    None
}

/// Checks that `arr` is monotonically decreasing (Lemma 1) over all subsets
/// of a small universe: adding any point never increases `arr`.
/// Returns the first violating `(set, x)` pair, if any.
pub fn check_monotone_decreasing<S: ScoreSource + ?Sized>(
    m: &S,
    tolerance: f64,
) -> Option<(Vec<usize>, usize)> {
    let n = m.n_points();
    assert!(n <= 16, "exhaustive check is exponential; use small universes");
    let total = 1u32 << n;
    for mask in 0..total {
        let sel: Vec<usize> = (0..n).filter(|&p| mask & (1 << p) != 0).collect();
        let base = arr_unchecked(m, &sel);
        for x in 0..n {
            let bit = 1u32 << x;
            if mask & bit != 0 {
                continue;
            }
            let mut bigger = sel.clone();
            bigger.push(x);
            if arr_unchecked(m, &bigger) > base + tolerance {
                return Some((sel, x));
            }
        }
    }
    None
}

/// Empirical approximation ratio `arr(S_greedy) / arr(S_opt)` with a guard
/// for the zero-optimal case (ratio 1 when both are ~0, infinity when only
/// the optimum is ~0).
///
/// # Errors
///
/// Never fails currently; returns `Result` for interface stability.
pub fn approximation_ratio(greedy_arr: f64, optimal_arr: f64) -> Result<f64> {
    const EPS: f64 = 1e-12;
    if optimal_arr.abs() < EPS {
        if greedy_arr.abs() < EPS {
            return Ok(1.0);
        }
        return Ok(f64::INFINITY);
    }
    Ok(greedy_arr / optimal_arr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scores::ScoreMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table_i() -> ScoreMatrix {
        ScoreMatrix::from_rows(
            vec![
                vec![0.9, 0.7, 0.2, 0.4],
                vec![0.6, 1.0, 0.5, 0.2],
                vec![0.2, 0.6, 0.3, 1.0],
                vec![0.1, 0.2, 1.0, 0.9],
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn table_i_is_supermodular_and_monotone() {
        let m = table_i();
        assert_eq!(check_supermodularity(&m, 1e-9), None);
        assert_eq!(check_monotone_decreasing(&m, 1e-9), None);
    }

    #[test]
    fn random_matrices_are_supermodular() {
        // Theorem 2 holds for arbitrary score matrices; fuzz it.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let n = rng.gen_range(2..7);
            let users = rng.gen_range(1..6);
            let rows: Vec<Vec<f64>> =
                (0..users).map(|_| (0..n).map(|_| rng.gen_range(0.01..1.0)).collect()).collect();
            let m = ScoreMatrix::from_rows(rows, None).unwrap();
            assert_eq!(check_supermodularity(&m, 1e-9), None);
            assert_eq!(check_monotone_decreasing(&m, 1e-9), None);
        }
    }

    #[test]
    fn steepness_in_unit_interval() {
        let m = table_i();
        let s = steepness(&m);
        assert!((0.0..=1.0).contains(&s), "steepness {s}");
    }

    #[test]
    fn marginal_decrease_non_negative() {
        let m = table_i();
        for x in 0..4 {
            assert!(marginal_decrease(&m, x, &[x]) >= -1e-12);
            let all = vec![0, 1, 2, 3];
            assert!(marginal_decrease(&m, x, &all) >= -1e-12);
        }
    }

    #[test]
    fn approximation_bound_limits() {
        assert_eq!(approximation_bound(0.0), 1.0);
        assert!(approximation_bound(1.0).is_infinite());
        let mid = approximation_bound(0.5); // t = 1 -> e - 1
        assert!((mid - (std::f64::consts::E - 1.0)).abs() < 1e-12);
        // Monotone in s.
        assert!(approximation_bound(0.3) < approximation_bound(0.6));
        // Near-zero steepness stays near 1.
        assert!((approximation_bound(1e-12) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn approximation_ratio_guards() {
        assert_eq!(approximation_ratio(0.0, 0.0).unwrap(), 1.0);
        assert!(approximation_ratio(0.1, 0.0).unwrap().is_infinite());
        assert!((approximation_ratio(0.2, 0.1).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn violation_struct_is_reported() {
        // Construct a *non*-supermodular function artificially? arr is always
        // supermodular, so instead verify the detector's plumbing by checking
        // that a tolerance of -1 (impossible to satisfy) flags something.
        let m = table_i();
        let v = check_supermodularity(&m, -1.0);
        assert!(v.is_some(), "negative tolerance must flag a (spurious) violation");
        let v = v.unwrap();
        assert!(v.small_delta <= v.large_delta + 1e-9);
    }
}
