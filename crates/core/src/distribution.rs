//! Probability distributions `Θ` over utility functions.
//!
//! The paper treats `Θ` as a black box that can be sampled (Section III-C)
//! or, for a countable `F`, enumerated exactly (Appendix A). Both cases are
//! covered: every type here implements [`UtilityDistribution`] for sampling,
//! and [`DiscreteDistribution`] additionally exposes its atoms for exact
//! average regret ratio computation.

use std::sync::Arc;

use rand::{Rng, RngCore};

use crate::error::{FamError, Result};
use crate::randext;
use crate::utility::{CobbDouglasUtility, LinearUtility, UtilityFunction};

/// A sampleable distribution over utility functions.
pub trait UtilityDistribution: Send + Sync {
    /// Dimensionality of the points the sampled functions expect
    /// (0 for table-based functions that ignore coordinates).
    fn dim(&self) -> usize;

    /// Draws one utility function according to the distribution.
    fn sample(&self, rng: &mut dyn RngCore) -> Arc<dyn UtilityFunction>;

    /// Short human-readable name.
    fn name(&self) -> &'static str {
        "distribution"
    }
}

/// Linear utilities with weights drawn i.i.d. uniformly from `[0,1]^d` —
/// the distribution used for all of the paper's uniform-Θ experiments.
#[derive(Debug, Clone)]
pub struct UniformLinear {
    dim: usize,
}

impl UniformLinear {
    /// Creates the distribution for `dim`-dimensional points.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(FamError::ZeroDimension);
        }
        Ok(UniformLinear { dim })
    }
}

impl UtilityDistribution for UniformLinear {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Arc<dyn UtilityFunction> {
        loop {
            let weights: Vec<f64> = (0..self.dim).map(|_| rng.gen_range(0.0..=1.0)).collect();
            // An all-zero weight vector would make every utility 0 and the
            // regret ratio undefined; resample (probability-0 event).
            if weights.iter().any(|w| *w > 0.0) {
                return Arc::new(LinearUtility::new(weights).expect("valid weights"));
            }
        }
    }

    fn name(&self) -> &'static str {
        "uniform-linear"
    }
}

/// Linear utilities with weights uniform on the probability simplex
/// (`sum w_i = 1`). Scaling does not change regret ratios, so this is the
/// canonical "direction-uniform under L1" alternative to [`UniformLinear`].
#[derive(Debug, Clone)]
pub struct SimplexLinear {
    dim: usize,
}

impl SimplexLinear {
    /// Creates the distribution for `dim`-dimensional points.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(FamError::ZeroDimension);
        }
        Ok(SimplexLinear { dim })
    }
}

impl UtilityDistribution for SimplexLinear {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Arc<dyn UtilityFunction> {
        let mut weights = vec![0.0; self.dim];
        randext::uniform_simplex_into(rng, &mut weights);
        Arc::new(LinearUtility::new(weights).expect("valid weights"))
    }

    fn name(&self) -> &'static str {
        "simplex-linear"
    }
}

/// Linear utilities with Dirichlet-distributed weights — a *non-uniform*
/// continuous Θ for experiments that stress the distribution-awareness of
/// average regret ratio (maximum regret ratio cannot distinguish these).
#[derive(Debug, Clone)]
pub struct DirichletLinear {
    alpha: Vec<f64>,
}

impl DirichletLinear {
    /// Creates the distribution with concentration parameters `alpha`.
    ///
    /// # Errors
    ///
    /// Returns an error if `alpha` is empty or has non-positive entries.
    pub fn new(alpha: Vec<f64>) -> Result<Self> {
        if alpha.is_empty() {
            return Err(FamError::ZeroDimension);
        }
        if alpha.iter().any(|a| !a.is_finite() || *a <= 0.0) {
            return Err(FamError::InvalidParameter {
                name: "alpha",
                message: "Dirichlet concentrations must be positive and finite".into(),
            });
        }
        Ok(DirichletLinear { alpha })
    }

    /// The concentration parameters.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }
}

impl UtilityDistribution for DirichletLinear {
    fn dim(&self) -> usize {
        self.alpha.len()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Arc<dyn UtilityFunction> {
        let mut weights = vec![0.0; self.alpha.len()];
        randext::dirichlet_into(rng, &self.alpha, &mut weights);
        Arc::new(LinearUtility::new(weights).expect("valid weights"))
    }

    fn name(&self) -> &'static str {
        "dirichlet-linear"
    }
}

/// Cobb–Douglas utilities with exponents uniform on the simplex — a fully
/// non-linear continuous Θ demonstrating that the sampling framework and
/// GREEDY-SHRINK are agnostic to the utility family.
#[derive(Debug, Clone)]
pub struct CobbDouglasDistribution {
    dim: usize,
}

impl CobbDouglasDistribution {
    /// Creates the distribution for `dim`-dimensional points.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(FamError::ZeroDimension);
        }
        Ok(CobbDouglasDistribution { dim })
    }
}

impl UtilityDistribution for CobbDouglasDistribution {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Arc<dyn UtilityFunction> {
        let mut exps = vec![0.0; self.dim];
        randext::uniform_simplex_into(rng, &mut exps);
        Arc::new(CobbDouglasUtility::new(exps).expect("valid exponents"))
    }

    fn name(&self) -> &'static str {
        "cobb-douglas"
    }
}

/// A countable (finite) distribution over explicit utility functions —
/// Appendix A of the paper. Supports both sampling and exact enumeration.
pub struct DiscreteDistribution {
    functions: Vec<Arc<dyn UtilityFunction>>,
    probabilities: Vec<f64>,
    cumulative: Vec<f64>,
    dim: usize,
}

impl DiscreteDistribution {
    /// Creates a finite distribution from `(function, probability)` atoms.
    /// Probabilities are normalized to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns an error if the atom list is empty or weights are invalid
    /// (negative, non-finite, or all zero).
    pub fn new(atoms: Vec<(Arc<dyn UtilityFunction>, f64)>, dim: usize) -> Result<Self> {
        if atoms.is_empty() {
            return Err(FamError::InvalidWeights("no atoms supplied".into()));
        }
        let mut functions = Vec::with_capacity(atoms.len());
        let mut probabilities = Vec::with_capacity(atoms.len());
        for (f, p) in atoms {
            if !p.is_finite() || p < 0.0 {
                return Err(FamError::InvalidWeights(format!("probability {p} is invalid")));
            }
            functions.push(f);
            probabilities.push(p);
        }
        let total: f64 = probabilities.iter().sum();
        if total <= 0.0 {
            return Err(FamError::InvalidWeights("probabilities sum to zero".into()));
        }
        probabilities.iter_mut().for_each(|p| *p /= total);
        let mut cumulative = Vec::with_capacity(probabilities.len());
        let mut acc = 0.0;
        for p in &probabilities {
            acc += p;
            cumulative.push(acc);
        }
        Ok(DiscreteDistribution { functions, probabilities, cumulative, dim })
    }

    /// Builds the uniform distribution over the given functions.
    ///
    /// # Errors
    ///
    /// Returns an error if the function list is empty.
    pub fn uniform(functions: Vec<Arc<dyn UtilityFunction>>, dim: usize) -> Result<Self> {
        let n = functions.len();
        Self::new(functions.into_iter().map(|f| (f, 1.0 / n.max(1) as f64)).collect(), dim)
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when there are no atoms (never for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// The utility functions, in atom order.
    pub fn functions(&self) -> &[Arc<dyn UtilityFunction>] {
        &self.functions
    }

    /// The normalized probabilities, in atom order.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }
}

impl UtilityDistribution for DiscreteDistribution {
    fn dim(&self) -> usize {
        self.dim
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Arc<dyn UtilityFunction> {
        let i = randext::sample_discrete_cdf(rng, &self.cumulative);
        Arc::clone(&self.functions[i])
    }

    fn name(&self) -> &'static str {
        "discrete"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::TableUtility;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_linear_samples_valid_weights() {
        let d = UniformLinear::new(3).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            let f = d.sample(&mut r);
            let u = f.utility(0, &[1.0, 1.0, 1.0]);
            assert!((0.0..=3.0 + 1e-12).contains(&u));
        }
        assert_eq!(d.dim(), 3);
        assert!(UniformLinear::new(0).is_err());
    }

    #[test]
    fn simplex_linear_weights_sum_to_one() {
        let d = SimplexLinear::new(4).unwrap();
        let mut r = rng();
        let f = d.sample(&mut r);
        // utility of the all-ones point equals the weight sum = 1
        assert!((f.utility(0, &[1.0; 4]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dirichlet_rejects_bad_alpha() {
        assert!(DirichletLinear::new(vec![]).is_err());
        assert!(DirichletLinear::new(vec![1.0, 0.0]).is_err());
        assert!(DirichletLinear::new(vec![1.0, f64::NAN]).is_err());
        assert!(DirichletLinear::new(vec![2.0, 3.0]).is_ok());
    }

    #[test]
    fn dirichlet_concentrates_on_high_alpha_dim() {
        let d = DirichletLinear::new(vec![10.0, 0.5]).unwrap();
        let mut r = rng();
        let mut first = 0.0;
        let n = 2_000;
        for _ in 0..n {
            let f = d.sample(&mut r);
            first += f.utility(0, &[1.0, 0.0]);
        }
        assert!(first / n as f64 > 0.8, "expected mass on dim 0, got {}", first / n as f64);
    }

    #[test]
    fn cobb_douglas_distribution_is_nonlinear() {
        let d = CobbDouglasDistribution::new(2).unwrap();
        let mut r = rng();
        let f = d.sample(&mut r);
        // f(2p) != 2 f(p) in general for Cobb-Douglas with exponent sum 1 on
        // unequal points; at least check positivity and monotonicity.
        let lo = f.utility(0, &[0.2, 0.3]);
        let hi = f.utility(0, &[0.4, 0.6]);
        assert!(hi > lo);
    }

    #[test]
    fn discrete_normalizes_and_samples() {
        let f1: Arc<dyn UtilityFunction> = Arc::new(TableUtility::new(vec![1.0, 0.0]).unwrap());
        let f2: Arc<dyn UtilityFunction> = Arc::new(TableUtility::new(vec![0.0, 1.0]).unwrap());
        let d = DiscreteDistribution::new(vec![(f1, 3.0), (f2, 1.0)], 0).unwrap();
        assert_eq!(d.probabilities(), &[0.75, 0.25]);
        let mut r = rng();
        let mut hits_first = 0;
        let n = 20_000;
        for _ in 0..n {
            let f = d.sample(&mut r);
            if f.utility(0, &[]) > 0.5 {
                hits_first += 1;
            }
        }
        let frac = hits_first as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn discrete_uniform_constructor() {
        let fs: Vec<Arc<dyn UtilityFunction>> = vec![
            Arc::new(TableUtility::new(vec![1.0]).unwrap()),
            Arc::new(TableUtility::new(vec![2.0]).unwrap()),
        ];
        let d = DiscreteDistribution::uniform(fs, 0).unwrap();
        assert_eq!(d.probabilities(), &[0.5, 0.5]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn discrete_rejects_invalid() {
        assert!(DiscreteDistribution::new(vec![], 0).is_err());
        let f: Arc<dyn UtilityFunction> = Arc::new(TableUtility::new(vec![1.0]).unwrap());
        assert!(DiscreteDistribution::new(vec![(f.clone(), -1.0)], 0).is_err());
        assert!(DiscreteDistribution::new(vec![(f, 0.0)], 0).is_err());
    }
}
