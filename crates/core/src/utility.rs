//! Utility functions (Definition 1).
//!
//! A utility function maps a point's coordinates to a non-negative score.
//! The framework makes *no* assumption on the functional form — linear
//! functions are merely the most common instantiation in the paper's
//! experiments; [`CobbDouglasUtility`] demonstrates a non-linear monotone
//! family, and [`TableUtility`] covers the explicit per-point vector
//! representation of Definition 1 / Table I.

use crate::error::{FamError, Result};

/// A user's utility function `f : R^d_{>=0} -> R_{>=0}`.
///
/// Implementations must return finite, non-negative values for valid points.
pub trait UtilityFunction: Send + Sync {
    /// Utility of the point with coordinates `point`. The `index` is the
    /// point's position in the dataset, allowing table-based functions that
    /// score points by identity rather than by coordinates.
    fn utility(&self, index: usize, point: &[f64]) -> f64;

    /// Short human-readable description of the functional family.
    fn kind(&self) -> &'static str {
        "utility"
    }

    /// The weight vector of a linear utility, when this function *is*
    /// linear over the point coordinates.
    ///
    /// Returning `Some(w)` is a promise that `utility(i, p)` equals
    /// [`crate::kernels::dot`]`(w, p)` **bit-for-bit** for every point of
    /// the dataset being scored — it routes the function through the
    /// fused batch-scoring kernel ([`crate::kernels::linear_score_row`]),
    /// whose per-element arithmetic is exactly `dot`. Non-linear and
    /// index-based families keep the default `None` and are scored
    /// through `utility` per element.
    fn linear_weights(&self) -> Option<&[f64]> {
        None
    }
}

/// Linear utility `f(p) = w · p` with non-negative weights.
///
/// # Examples
///
/// ```
/// use fam_core::{LinearUtility, UtilityFunction};
/// let f = LinearUtility::new(vec![0.25, 0.75]).unwrap();
/// assert!((f.utility(0, &[1.0, 1.0]) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearUtility {
    weights: Vec<f64>,
}

impl LinearUtility {
    /// Creates a linear utility from a weight vector.
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty or contains negative or
    /// non-finite values.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(FamError::ZeroDimension);
        }
        for (i, w) in weights.iter().enumerate() {
            if !w.is_finite() {
                return Err(FamError::NonFinite { row: 0, col: i });
            }
            if *w < 0.0 {
                return Err(FamError::NegativeValue { row: 0, col: i });
            }
        }
        Ok(LinearUtility { weights })
    }

    /// The weight vector.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Returns a copy whose weights sum to 1 (direction is preserved;
    /// scaling a linear utility does not change any regret ratio).
    ///
    /// # Errors
    ///
    /// Returns an error if all weights are zero.
    pub fn normalized(&self) -> Result<Self> {
        let s: f64 = self.weights.iter().sum();
        if s <= 0.0 {
            return Err(FamError::InvalidWeights("all-zero weight vector".into()));
        }
        Ok(LinearUtility { weights: self.weights.iter().map(|w| w / s).collect() })
    }
}

impl UtilityFunction for LinearUtility {
    #[inline]
    fn utility(&self, _index: usize, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.weights.len());
        crate::kernels::dot(&self.weights, point)
    }

    fn kind(&self) -> &'static str {
        "linear"
    }

    #[inline]
    fn linear_weights(&self) -> Option<&[f64]> {
        Some(&self.weights)
    }
}

/// Cobb–Douglas utility `f(p) = prod_i p_i^{w_i}` — a standard non-linear,
/// monotone utility family from economics, used to exercise the paper's
/// claim that GREEDY-SHRINK "does not make any assumption on the form of the
/// utility functions".
///
/// Zero coordinates with positive exponents yield utility 0.
#[derive(Debug, Clone, PartialEq)]
pub struct CobbDouglasUtility {
    exponents: Vec<f64>,
}

impl CobbDouglasUtility {
    /// Creates a Cobb–Douglas utility from non-negative exponents.
    ///
    /// # Errors
    ///
    /// Returns an error if `exponents` is empty or contains negative or
    /// non-finite values.
    pub fn new(exponents: Vec<f64>) -> Result<Self> {
        if exponents.is_empty() {
            return Err(FamError::ZeroDimension);
        }
        for (i, w) in exponents.iter().enumerate() {
            if !w.is_finite() {
                return Err(FamError::NonFinite { row: 0, col: i });
            }
            if *w < 0.0 {
                return Err(FamError::NegativeValue { row: 0, col: i });
            }
        }
        Ok(CobbDouglasUtility { exponents })
    }

    /// The exponent vector.
    #[inline]
    pub fn exponents(&self) -> &[f64] {
        &self.exponents
    }
}

impl UtilityFunction for CobbDouglasUtility {
    fn utility(&self, _index: usize, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.exponents.len());
        let mut acc = 0.0f64;
        for (w, x) in self.exponents.iter().zip(point) {
            if *w == 0.0 {
                continue;
            }
            if *x <= 0.0 {
                return 0.0;
            }
            acc += w * x.ln();
        }
        acc.exp()
    }

    fn kind(&self) -> &'static str {
        "cobb-douglas"
    }
}

/// Explicit per-point utility scores (the n-dimensional vector form of
/// Definition 1; see Table I in the paper). Scores are indexed by the
/// point's dataset position.
#[derive(Debug, Clone, PartialEq)]
pub struct TableUtility {
    scores: Vec<f64>,
}

impl TableUtility {
    /// Creates a table utility from one score per dataset point.
    ///
    /// # Errors
    ///
    /// Returns an error if `scores` is empty or contains negative or
    /// non-finite values.
    pub fn new(scores: Vec<f64>) -> Result<Self> {
        if scores.is_empty() {
            return Err(FamError::EmptyDataset);
        }
        for (i, s) in scores.iter().enumerate() {
            if !s.is_finite() {
                return Err(FamError::NonFinite { row: 0, col: i });
            }
            if *s < 0.0 {
                return Err(FamError::NegativeValue { row: 0, col: i });
            }
        }
        Ok(TableUtility { scores })
    }

    /// Number of points this table scores.
    #[inline]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when the table is empty (never for a constructed value).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// The raw score vector.
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }
}

impl UtilityFunction for TableUtility {
    #[inline]
    fn utility(&self, index: usize, _point: &[f64]) -> f64 {
        self.scores[index]
    }

    fn kind(&self) -> &'static str {
        "table"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_dot_product() {
        let f = LinearUtility::new(vec![0.5, 2.0]).unwrap();
        assert!((f.utility(0, &[2.0, 0.25]) - 1.5).abs() < 1e-12);
        assert_eq!(f.kind(), "linear");
    }

    #[test]
    fn linear_rejects_bad_weights() {
        assert!(LinearUtility::new(vec![]).is_err());
        assert!(LinearUtility::new(vec![-1.0]).is_err());
        assert!(LinearUtility::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn linear_normalized_sums_to_one() {
        let f = LinearUtility::new(vec![1.0, 3.0]).unwrap().normalized().unwrap();
        assert_eq!(f.weights(), &[0.25, 0.75]);
        assert!(LinearUtility::new(vec![0.0, 0.0]).unwrap().normalized().is_err());
    }

    #[test]
    fn cobb_douglas_matches_closed_form() {
        let f = CobbDouglasUtility::new(vec![0.5, 0.5]).unwrap();
        let got = f.utility(0, &[4.0, 9.0]);
        assert!((got - 6.0).abs() < 1e-9, "sqrt(4*9) = 6, got {got}");
    }

    #[test]
    fn cobb_douglas_zero_coordinate() {
        let f = CobbDouglasUtility::new(vec![1.0, 1.0]).unwrap();
        assert_eq!(f.utility(0, &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn cobb_douglas_zero_exponent_ignores_dim() {
        let f = CobbDouglasUtility::new(vec![0.0, 1.0]).unwrap();
        assert!((f.utility(0, &[0.0, 5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn table_scores_by_index() {
        let f = TableUtility::new(vec![0.9, 0.7, 0.2, 0.4]).unwrap();
        assert_eq!(f.utility(2, &[]), 0.2);
        assert_eq!(f.len(), 4);
        assert_eq!(f.kind(), "table");
    }

    #[test]
    fn table_rejects_invalid() {
        assert!(TableUtility::new(vec![]).is_err());
        assert!(TableUtility::new(vec![-0.1]).is_err());
        assert!(TableUtility::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn trait_objects_are_usable() {
        let fs: Vec<Box<dyn UtilityFunction>> = vec![
            Box::new(LinearUtility::new(vec![1.0]).unwrap()),
            Box::new(TableUtility::new(vec![0.5]).unwrap()),
        ];
        assert!((fs[0].utility(0, &[2.0]) - 2.0).abs() < 1e-12);
        assert!((fs[1].utility(0, &[2.0]) - 0.5).abs() < 1e-12);
    }
}
