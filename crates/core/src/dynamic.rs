//! Dynamic databases: incremental updates to a live score matrix and its
//! selection.
//!
//! The paper selects a regret-minimizing set from a *static* database;
//! a production deployment must also survive inserts and deletes. This
//! module owns that scenario end to end: a [`DynamicEngine`] holds the
//! current [`ScoreMatrix`], the current selection, and the evaluator
//! caches, and applies an [`UpdateBatch`] by
//!
//! 1. patching both matrix layouts in place
//!    ([`ScoreMatrix::delete_points`] / [`ScoreMatrix::insert_points`] —
//!    bit-identical to a from-scratch build of the updated database),
//! 2. resuming the evaluator incrementally
//!    ([`SelectionEvaluator::resume_after_update`] — only samples whose
//!    cached best points died are rescanned), and
//! 3. handing the resumed evaluator to a **repair policy** that
//!    warm-starts from the surviving selection instead of re-running a
//!    greedy from scratch (`fam-algos::warm_repair` is the standard
//!    policy; the engine stays policy-agnostic so `fam-core` does not
//!    depend on the algorithm crate).
//!
//! The incremental path is pinned against full recomputation by
//! `crates/algos/tests/dynamic_equivalence.rs` and A/B-benchmarked across
//! churn rates by `crates/bench/benches/dynamic.rs` (`BENCH_dynamic.json`).
//! How the in-place patches interact with the matrix's strided layouts
//! (row slack, the point-major mirror) and with the bit-identity
//! contract is documented in `docs/PERFORMANCE.md`.

use std::ops::Range;
use std::sync::Arc;

use crate::dataset::Dataset;
use crate::error::{FamError, Result};
use crate::evaluator::{EvaluatorState, SelectionEvaluator};
use crate::scores::ScoreMatrix;
use crate::utility::UtilityFunction;

/// One batch of database mutations, applied atomically by
/// [`DynamicEngine::apply_with`].
///
/// Deletions are indices into the **pre-batch** point universe and are
/// applied first; insertions are score columns (`n_samples` entries each,
/// sample order) appended after compaction, so they take the highest
/// indices of the post-batch universe. A batch may not delete every
/// pre-existing point, even when it also inserts.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    /// Score columns of the points to insert (one `Vec` of `n_samples`
    /// scores per new point).
    pub insert: Vec<Vec<f64>>,
    /// Pre-batch indices of the points to delete (any order, no
    /// duplicates).
    pub delete: Vec<usize>,
}

impl UpdateBatch {
    /// True when the batch mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }
}

/// What a repair policy receives alongside the resumed evaluator.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Post-batch indices of the points this batch inserted.
    pub inserted: Range<usize>,
    /// Target selection size. [`DynamicEngine::apply_with`] rejects any
    /// batch that would leave fewer than `k` points, so this never
    /// exceeds the post-batch point count.
    pub k: usize,
}

/// What a repair policy reports back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Points added to the selection (inserted candidates and greedy
    /// growth).
    pub added: usize,
    /// Points removed from the selection.
    pub removed: usize,
    /// `arr` evaluations spent repairing.
    pub evaluations: u64,
}

/// Report of one appended sample batch
/// ([`DynamicEngine::append_sample_rows_with`] /
/// [`DynamicEngine::append_functions_with`]).
#[derive(Debug, Clone)]
pub struct AppendReport {
    /// Samples appended by the batch.
    pub appended: usize,
    /// Post-append sample count `N`.
    pub n_samples: usize,
    /// The selection entering the repair policy (a sample append never
    /// drops members, so this is the full pre-append selection).
    pub kept: Vec<usize>,
    /// Selection after repair, sorted ascending.
    pub selection: Vec<usize>,
    /// `arr` of the repaired selection under the refined estimates.
    pub arr: f64,
    /// What the repair policy did.
    pub repair: RepairOutcome,
}

/// Report of one applied [`UpdateBatch`].
#[derive(Debug, Clone)]
pub struct ApplyReport {
    /// Points deleted by the batch.
    pub deleted: usize,
    /// Points inserted by the batch.
    pub inserted: usize,
    /// Post-batch indices of the inserted points.
    pub inserted_range: Range<usize>,
    /// Post-batch point count.
    pub n_points: usize,
    /// Index remap of the pre-batch points: `remap[old] == Some(new)`
    /// for survivors (swap-remove order, see
    /// [`ScoreMatrix::delete_points`]), `None` for deleted points.
    /// Callers mirroring the point universe elsewhere (e.g. a serving
    /// layer keeping raw coordinates alongside the matrix) apply this
    /// permutation and then append the inserted points in batch order.
    pub remap: Vec<Option<u32>>,
    /// Selection surviving the batch *before* repair (post-batch
    /// indices) — the warm-start seed.
    pub kept: Vec<usize>,
    /// Selection after repair, sorted ascending.
    pub selection: Vec<usize>,
    /// `arr` of the repaired selection.
    pub arr: f64,
    /// Samples whose cached best or runner-up point died and was
    /// rescanned while resuming the evaluator.
    pub resumed_rescans: u64,
    /// What the repair policy did.
    pub repair: RepairOutcome,
}

/// A live score matrix plus its maintained selection, surviving inserts
/// and deletes without recompute-from-scratch.
///
/// # Examples
///
/// ```
/// use fam_core::{DynamicEngine, ScoreMatrix, UpdateBatch};
///
/// let m = ScoreMatrix::from_rows(vec![
///     vec![1.0, 0.8, 0.1],
///     vec![0.2, 0.9, 1.0],
/// ], None).unwrap();
/// let mut engine = DynamicEngine::new(m, 2, &[0, 2]).unwrap();
/// let batch = UpdateBatch { insert: vec![vec![0.5, 0.95]], delete: vec![0] };
/// // A trivial repair policy: keep whatever survived, then greedily add
/// // the inserted point if the selection is short (real callers use
/// // `fam_algos::warm_repair`).
/// let report = engine.apply_with(&batch, |ev, ws| {
///     let mut added = 0;
///     for p in ws.inserted.clone() {
///         if ev.len() < ws.k && !ev.contains(p) {
///             ev.add(p);
///             added += 1;
///         }
///     }
///     Ok(fam_core::RepairOutcome { added, removed: 0, evaluations: 0 })
/// }).unwrap();
/// assert_eq!(report.n_points, 3);
/// assert_eq!(engine.selection().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicEngine {
    matrix: ScoreMatrix,
    state: EvaluatorState,
    k: usize,
    batches_applied: u64,
    appends_applied: u64,
}

impl DynamicEngine {
    /// Creates an engine from an initial matrix and selection.
    ///
    /// # Errors
    ///
    /// Returns an error when `k` is invalid for the matrix or the initial
    /// selection is out of bounds, duplicated, or larger than `k`.
    pub fn new(matrix: ScoreMatrix, k: usize, initial: &[usize]) -> Result<Self> {
        if k == 0 || k > matrix.n_points() {
            return Err(FamError::InvalidK { k, n: matrix.n_points() });
        }
        crate::selection::validate_indices(initial, matrix.n_points(), "initial")?;
        if initial.len() > k {
            return Err(FamError::InvalidParameter {
                name: "initial",
                message: format!("selection of {} points exceeds k = {k}", initial.len()),
            });
        }
        let state = SelectionEvaluator::new_with(&matrix, initial).into_state();
        Ok(DynamicEngine { matrix, state, k, batches_applied: 0, appends_applied: 0 })
    }

    /// The current score matrix.
    #[inline]
    pub fn matrix(&self) -> &ScoreMatrix {
        &self.matrix
    }

    /// Consumes the engine, returning the maintained matrix (e.g. to
    /// keep solving on it after a refinement run).
    #[inline]
    pub fn into_matrix(self) -> ScoreMatrix {
        self.matrix
    }

    /// The configured output size.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current selection, sorted ascending.
    pub fn selection(&self) -> Vec<usize> {
        self.state.selection()
    }

    /// `arr` of the current selection.
    #[inline]
    pub fn arr(&self) -> f64 {
        self.state.arr()
    }

    /// Number of batches applied so far.
    #[inline]
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// Applies a batch of updates and repairs the selection through the
    /// given policy.
    ///
    /// The repair policy receives the resumed evaluator (selection = the
    /// surviving members) plus a [`WarmStart`] naming the inserted index
    /// range and the target size; it must leave the evaluator holding the
    /// repaired selection. If the policy errors, the matrix keeps the
    /// applied batch (it counts in [`DynamicEngine::batches_applied`])
    /// and the selection resets to the surviving members, discarding any
    /// partial work the policy did before failing. An empty batch skips
    /// the matrix patch and evaluator resume entirely and goes straight
    /// to the policy.
    ///
    /// # Errors
    ///
    /// Returns batch-validation errors without mutating anything —
    /// including [`FamError::InvalidK`] when the batch would leave fewer
    /// than `k` points — or the repair policy's error.
    pub fn apply_with<R>(&mut self, batch: &UpdateBatch, repair: R) -> Result<ApplyReport>
    where
        R: for<'e> FnOnce(
            &mut SelectionEvaluator<'e, ScoreMatrix>,
            &WarmStart,
        ) -> Result<RepairOutcome>,
    {
        // Chaos hook: fires before any validation or mutation, so an
        // injected failure is indistinguishable from a rejected batch.
        crate::failpoints::fail_point("dynamic.apply")?;
        let Self { matrix, state, k, batches_applied, .. } = self;
        // Validate the insertions up front; deletions are validated by
        // `delete_points`, which runs first and leaves the matrix
        // untouched on any error — so a failed (or universe-wiping)
        // deletion can never follow an applied insertion, and vice versa.
        matrix.validate_new_points(&batch.insert)?;
        // A batch may not shrink the database below the configured output
        // size: a serving layer maintaining a k-sized selection must fail
        // the update loudly instead of silently degrading to fewer points.
        // (Duplicate delete indices would undercount here, but those are
        // rejected by `delete_points` before anything mutates.)
        let n_post = (matrix.n_points() + batch.insert.len()).checked_sub(batch.delete.len());
        if n_post.is_none_or(|n| n < *k) {
            return Err(FamError::InvalidK { k: *k, n: n_post.unwrap_or(0) });
        }
        let (mut ev, inserted, resumed_rescans, remap) = if batch.is_empty() {
            // Nothing changed: reattach the state directly — no remap, no
            // sample classification, no rescans. The resync keeps `arr`
            // and the owner lists bit-identical to a fresh rebuild, which
            // the dynamic-equivalence contract pins.
            let st = std::mem::replace(state, EvaluatorState::placeholder());
            let n = matrix.n_points();
            let mut ev = SelectionEvaluator::from_state(&*matrix, st);
            ev.resync();
            let identity = (0..n).map(|p| Some(p as u32)).collect();
            (ev, n..n, 0, identity)
        } else {
            let remap = matrix.delete_points(&batch.delete)?;
            let first_new = matrix.n_points();
            // Columns were validated up front; skip the second scan.
            matrix.insert_points_prevalidated(&batch.insert);
            let inserted = first_new..matrix.n_points();
            let st = std::mem::replace(state, EvaluatorState::placeholder());
            let rescans_before = st.counters().rescans;
            let ev = SelectionEvaluator::resume_after_update(&*matrix, st, &remap);
            let resumed_rescans = ev.counters().rescans - rescans_before;
            (ev, inserted, resumed_rescans, remap)
        };
        let kept = ev.selection();
        let ws = WarmStart { inserted: inserted.clone(), k: *k };
        *batches_applied += 1;
        // From here until the disarm below, `state` holds a placeholder.
        // The guard honors the documented contract — fall back to exactly
        // the surviving members, not whatever the policy left behind —
        // whether the policy returns `Err` or panics out of this frame.
        let mut guard = SurvivorGuard { state, matrix: &*matrix, kept: &kept, armed: true };
        let repair = repair(&mut ev, &ws)?;
        guard.armed = false;
        let selection = ev.selection();
        let arr = ev.arr();
        *guard.state = ev.into_state();
        drop(guard);
        Ok(ApplyReport {
            deleted: batch.delete.len(),
            inserted: batch.insert.len(),
            inserted_range: inserted,
            n_points: matrix.n_points(),
            remap,
            kept,
            selection,
            arr,
            resumed_rescans,
            repair,
        })
    }

    /// Sample-append batches applied so far (the progressive-precision
    /// axis; point batches count in [`DynamicEngine::batches_applied`]).
    #[inline]
    pub fn appends_applied(&self) -> u64 {
        self.appends_applied
    }

    /// Appends new utility samples (one score row of `n_points` entries
    /// per sample) and re-polishes the selection through the given repair
    /// policy — the sample-axis twin of [`DynamicEngine::apply_with`].
    ///
    /// The matrix patch is [`ScoreMatrix::append_sample_rows`]
    /// (bit-identical to a from-scratch build over the concatenated
    /// sample stream) and the evaluator folds only the new rows
    /// ([`SelectionEvaluator::resume_after_append`]). The policy receives
    /// the resumed evaluator plus a [`WarmStart`] with an **empty**
    /// inserted range (no points changed) and the target size; `arr`
    /// re-estimates under the grown sample population even when the
    /// policy keeps the selection. Policy failures fall back to the
    /// pre-append selection, exactly like [`DynamicEngine::apply_with`].
    ///
    /// # Errors
    ///
    /// Returns [`ScoreMatrix::append_sample_rows`]'s validation errors
    /// with nothing mutated, or the repair policy's error.
    pub fn append_sample_rows_with<R>(
        &mut self,
        rows: &[Vec<f64>],
        repair: R,
    ) -> Result<AppendReport>
    where
        R: for<'e> FnOnce(
            &mut SelectionEvaluator<'e, ScoreMatrix>,
            &WarmStart,
        ) -> Result<RepairOutcome>,
    {
        crate::failpoints::fail_point("dynamic.append")?;
        self.matrix.append_sample_rows(rows)?;
        self.resume_appended(rows.len(), repair)
    }

    /// [`DynamicEngine::append_sample_rows_with`] from sampled utility
    /// functions: scores every point of `dataset` under each function
    /// exactly like the from-scratch construction
    /// ([`ScoreMatrix::append_functions`]). `dataset` must describe the
    /// engine's current point universe, in the engine's point order.
    ///
    /// # Errors
    ///
    /// As [`DynamicEngine::append_sample_rows_with`].
    pub fn append_functions_with<R>(
        &mut self,
        dataset: &Dataset,
        functions: &[Arc<dyn UtilityFunction>],
        repair: R,
    ) -> Result<AppendReport>
    where
        R: for<'e> FnOnce(
            &mut SelectionEvaluator<'e, ScoreMatrix>,
            &WarmStart,
        ) -> Result<RepairOutcome>,
    {
        crate::failpoints::fail_point("dynamic.append")?;
        self.matrix.append_functions(dataset, functions)?;
        self.resume_appended(functions.len(), repair)
    }

    /// Shared resume-and-repair tail of the sample-append paths: the
    /// matrix already holds the appended rows.
    fn resume_appended<R>(&mut self, appended: usize, repair: R) -> Result<AppendReport>
    where
        R: for<'e> FnOnce(
            &mut SelectionEvaluator<'e, ScoreMatrix>,
            &WarmStart,
        ) -> Result<RepairOutcome>,
    {
        let Self { matrix, state, k, appends_applied, .. } = self;
        let st = std::mem::replace(state, EvaluatorState::placeholder());
        let mut ev = SelectionEvaluator::resume_after_append(&*matrix, st);
        let kept = ev.selection();
        let n = matrix.n_points();
        let ws = WarmStart { inserted: n..n, k: *k };
        *appends_applied += 1;
        // Same guard contract as `apply_with`: a failing (or panicking)
        // policy falls back to the pre-append selection, never the
        // placeholder.
        let mut guard = SurvivorGuard { state, matrix: &*matrix, kept: &kept, armed: true };
        let repair = repair(&mut ev, &ws)?;
        guard.armed = false;
        let selection = ev.selection();
        let arr = ev.arr();
        *guard.state = ev.into_state();
        drop(guard);
        Ok(AppendReport { appended, n_samples: matrix.n_samples(), kept, selection, arr, repair })
    }
}

/// Restores a `DynamicEngine`'s evaluator state to the batch's surviving
/// members when the repair policy fails — by `Err` or by panic — so the
/// engine never outlives a repair holding the placeholder state.
struct SurvivorGuard<'a> {
    state: &'a mut EvaluatorState,
    matrix: &'a ScoreMatrix,
    kept: &'a [usize],
    armed: bool,
}

impl Drop for SurvivorGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            *self.state = SelectionEvaluator::new_with(self.matrix, self.kept).into_state();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regret;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn matrix() -> ScoreMatrix {
        ScoreMatrix::from_rows(
            vec![
                vec![0.9, 0.7, 0.2, 0.4],
                vec![0.6, 1.0, 0.5, 0.2],
                vec![0.2, 0.6, 0.3, 1.0],
                vec![0.1, 0.2, 1.0, 0.9],
            ],
            None,
        )
        .unwrap()
    }

    /// Keep-the-survivors policy used where repair behavior is not under
    /// test.
    fn no_repair(
        _ev: &mut SelectionEvaluator<'_, ScoreMatrix>,
        _ws: &WarmStart,
    ) -> Result<RepairOutcome> {
        Ok(RepairOutcome::default())
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            DynamicEngine::new(matrix(), 0, &[]),
            Err(FamError::InvalidK { k: 0, n: 4 })
        ));
        assert!(matches!(
            DynamicEngine::new(matrix(), 5, &[]),
            Err(FamError::InvalidK { k: 5, n: 4 })
        ));
        assert!(DynamicEngine::new(matrix(), 2, &[9]).is_err());
        assert!(DynamicEngine::new(matrix(), 2, &[1, 1]).is_err());
        assert!(DynamicEngine::new(matrix(), 1, &[0, 1]).is_err());
        let e = DynamicEngine::new(matrix(), 2, &[3, 1]).unwrap();
        assert_eq!(e.selection(), vec![1, 3]);
        assert_eq!(e.k(), 2);
        assert_eq!(e.batches_applied(), 0);
    }

    #[test]
    fn empty_batch_is_a_cheap_noop() {
        let mut e = DynamicEngine::new(matrix(), 2, &[1, 3]).unwrap();
        let arr = e.arr();
        let report = e.apply_with(&UpdateBatch::default(), no_repair).unwrap();
        assert!(UpdateBatch::default().is_empty());
        assert_eq!(report.deleted, 0);
        assert_eq!(report.inserted, 0);
        assert_eq!(report.kept, vec![1, 3]);
        assert_eq!(report.resumed_rescans, 0);
        assert_eq!(e.arr().to_bits(), arr.to_bits());
        assert_eq!(e.batches_applied(), 1);
    }

    #[test]
    fn batch_validation_is_atomic() {
        let mut e = DynamicEngine::new(matrix(), 2, &[1, 3]).unwrap();
        // Bad insert next to a valid delete: nothing may change.
        let bad = UpdateBatch { insert: vec![vec![1.0]], delete: vec![0] };
        assert!(e.apply_with(&bad, no_repair).is_err());
        assert_eq!(e.matrix().n_points(), 4);
        assert_eq!(e.selection(), vec![1, 3]);
        // Deleting the whole pre-existing universe is rejected even with
        // enough inserts in the same batch to stay at size.
        let wipe =
            UpdateBatch { insert: vec![vec![0.5; 4], vec![0.25; 4]], delete: vec![0, 1, 2, 3] };
        assert!(matches!(e.apply_with(&wipe, no_repair), Err(FamError::EmptyDataset)));
        assert_eq!(e.matrix().n_points(), 4);
        // Out-of-bounds delete.
        let oob = UpdateBatch { insert: vec![], delete: vec![7] };
        assert!(e.apply_with(&oob, no_repair).is_err());
        assert_eq!(e.batches_applied(), 0);
    }

    #[test]
    fn apply_patches_matrix_and_selection() {
        let mut e = DynamicEngine::new(matrix(), 2, &[1, 3]).unwrap();
        let batch = UpdateBatch { insert: vec![vec![0.3, 0.2, 0.9, 0.8]], delete: vec![1] };
        let report = e.apply_with(&batch, no_repair).unwrap();
        // Selection member 1 died; 3 swap-moved into slot 1; insert
        // appended at 3.
        assert_eq!(report.kept, vec![1]);
        assert_eq!(report.inserted_range, 3..4);
        assert_eq!(report.n_points, 4);
        assert_eq!(e.selection(), vec![1]);
        let direct = regret::arr_unchecked(e.matrix(), &[1]);
        assert!((e.arr() - direct).abs() < 1e-9);
        assert_eq!(e.batches_applied(), 1);
    }

    #[test]
    fn repair_error_keeps_survivors() {
        let mut e = DynamicEngine::new(matrix(), 2, &[1, 3]).unwrap();
        let batch = UpdateBatch { insert: vec![], delete: vec![3] };
        let r = e.apply_with(&batch, |ev, _ws| {
            // Partial work before failing must be discarded.
            ev.add(0);
            Err(FamError::InvalidParameter { name: "policy", message: "boom".into() })
        });
        assert!(r.is_err());
        // The batch stayed applied (and counts); the selection fell back
        // to exactly the survivors, not the policy's partial state.
        assert_eq!(e.matrix().n_points(), 3);
        assert_eq!(e.selection(), vec![1]);
        assert_eq!(e.batches_applied(), 1);
        let direct = regret::arr_unchecked(e.matrix(), &[1]);
        assert!((e.arr() - direct).abs() < 1e-9);
        // The engine remains usable.
        let report = e.apply_with(&UpdateBatch::default(), no_repair).unwrap();
        assert_eq!(report.kept, vec![1]);
        assert_eq!(e.batches_applied(), 2);
    }

    #[test]
    fn repair_panic_restores_survivors() {
        let mut e = DynamicEngine::new(matrix(), 2, &[1, 3]).unwrap();
        let batch = UpdateBatch { insert: vec![], delete: vec![3] };
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = e.apply_with(&batch, |ev, _ws| {
                // Partial work, then a policy bug.
                ev.add(0);
                panic!("policy bug");
            });
        }));
        assert!(unwound.is_err());
        // Same contract as the Err path: survivors, not the partial state
        // (and never the internal placeholder).
        assert_eq!(e.selection(), vec![1]);
        let direct = regret::arr_unchecked(e.matrix(), &[1]);
        assert!((e.arr() - direct).abs() < 1e-9);
        let report = e.apply_with(&UpdateBatch::default(), no_repair).unwrap();
        assert_eq!(report.kept, vec![1]);
    }

    #[test]
    fn repair_policy_reaches_inserted_points() {
        let mut e = DynamicEngine::new(matrix(), 2, &[0]).unwrap();
        let batch = UpdateBatch { insert: vec![vec![0.1, 0.2, 0.9, 1.0]], delete: vec![] };
        let report = e
            .apply_with(&batch, |ev, ws| {
                let mut added = 0;
                for p in ws.inserted.clone() {
                    if ev.len() < ws.k {
                        ev.add(p);
                        added += 1;
                    }
                }
                Ok(RepairOutcome { added, removed: 0, evaluations: 0 })
            })
            .unwrap();
        assert_eq!(report.repair.added, 1);
        assert_eq!(report.selection, vec![0, 4]);
        assert_eq!(e.selection(), vec![0, 4]);
        let direct = regret::arr_unchecked(e.matrix(), &[0, 4]);
        assert!((e.arr() - direct).abs() < 1e-9);
    }

    #[test]
    fn batch_below_k_errors_without_mutating() {
        // 4 points, k = 2: any batch landing under 2 points must be
        // rejected up front — never applied, never panicking.
        let mut e = DynamicEngine::new(matrix(), 2, &[1, 3]).unwrap();
        let under = UpdateBatch { insert: vec![], delete: vec![0, 1, 2] };
        assert!(matches!(e.apply_with(&under, no_repair), Err(FamError::InvalidK { k: 2, n: 1 })));
        // Inserts count toward the post-batch size.
        let balanced = UpdateBatch { insert: vec![vec![0.5; 4]], delete: vec![0, 1, 2] };
        assert!(e.apply_with(&balanced, no_repair).is_ok());
        assert_eq!(e.matrix().n_points(), 2);
        // More deletes than points (also a duplicate-free impossibility):
        // the guard's checked_sub path, not an underflow panic.
        let mut e = DynamicEngine::new(matrix(), 2, &[1, 3]).unwrap();
        let overdrawn = UpdateBatch { insert: vec![], delete: vec![0, 1, 2, 3, 4] };
        assert!(matches!(
            e.apply_with(&overdrawn, no_repair),
            Err(FamError::InvalidK { k: 2, n: 0 })
        ));
        assert_eq!(e.matrix().n_points(), 4);
        assert_eq!(e.selection(), vec![1, 3]);
        assert_eq!(e.batches_applied(), 0);
    }

    #[test]
    fn deleting_the_entire_selection_regrows_from_survivors() {
        // Every selected point dies; warm repair must regrow from an
        // empty seed exactly like ADD-GREEDY from scratch.
        let mut e = DynamicEngine::new(matrix(), 2, &[1, 3]).unwrap();
        let batch = UpdateBatch { insert: vec![], delete: vec![1, 3] };
        let report = e
            .apply_with(&batch, |ev, ws| {
                assert!(ev.is_empty());
                let mut added = 0;
                while ev.len() < ws.k {
                    let p = (0..ev.n_points()).find(|&p| !ev.contains(p)).unwrap();
                    ev.add(p);
                    added += 1;
                }
                Ok(RepairOutcome { added, removed: 0, evaluations: 0 })
            })
            .unwrap();
        assert_eq!(report.kept, Vec::<usize>::new());
        assert_eq!(report.repair.added, 2);
        assert_eq!(e.selection().len(), 2);
        let direct = regret::arr_unchecked(e.matrix(), &e.selection());
        assert!((e.arr() - direct).abs() < 1e-9);
    }

    #[test]
    fn insert_into_near_empty_matrix() {
        // A single-point universe accepts inserts and the selection can
        // reach the newcomers.
        let m = ScoreMatrix::from_rows(vec![vec![0.4], vec![0.7]], None).unwrap();
        let mut e = DynamicEngine::new(m, 1, &[0]).unwrap();
        let batch = UpdateBatch { insert: vec![vec![0.9, 0.9], vec![0.2, 0.1]], delete: vec![] };
        let report = e
            .apply_with(&batch, |ev, ws| {
                // Move the selection onto the strictly better insert.
                ev.remove(0);
                ev.add(ws.inserted.start);
                Ok(RepairOutcome { added: 1, removed: 1, evaluations: 0 })
            })
            .unwrap();
        assert_eq!(report.n_points, 3);
        assert_eq!(report.inserted_range, 1..3);
        assert_eq!(e.selection(), vec![1]);
        let direct = regret::arr_unchecked(e.matrix(), &[1]);
        assert!((e.arr() - direct).abs() < 1e-9);
        // The old sole point can now be deleted (n stays >= k).
        let drop_old = UpdateBatch { insert: vec![], delete: vec![0] };
        assert!(e.apply_with(&drop_old, no_repair).is_ok());
        assert_eq!(e.matrix().n_points(), 2);
    }

    #[test]
    fn append_samples_reestimates_arr_and_keeps_selection() {
        let mut e = DynamicEngine::new(matrix(), 2, &[1, 3]).unwrap();
        let before = e.arr();
        let report = e
            .append_sample_rows_with(
                &[vec![0.9, 0.1, 0.1, 0.1], vec![0.2, 0.8, 0.3, 0.4]],
                no_repair,
            )
            .unwrap();
        assert_eq!(report.appended, 2);
        assert_eq!(report.n_samples, 6);
        assert_eq!(report.kept, vec![1, 3]);
        assert_eq!(report.selection, vec![1, 3]);
        assert_eq!(e.selection(), vec![1, 3]);
        assert_eq!(e.appends_applied(), 1);
        assert_eq!(e.batches_applied(), 0);
        // arr re-estimated under the grown population, consistent with a
        // direct evaluation.
        assert_ne!(report.arr.to_bits(), before.to_bits());
        let direct = regret::arr_unchecked(e.matrix(), &[1, 3]);
        assert_eq!(e.arr().to_bits(), report.arr.to_bits());
        assert!((e.arr() - direct).abs() < 1e-9);
    }

    #[test]
    fn append_validation_and_policy_failures_are_atomic() {
        let mut e = DynamicEngine::new(matrix(), 2, &[1, 3]).unwrap();
        // Bad rows leave everything untouched.
        assert!(e.append_sample_rows_with(&[vec![1.0]], no_repair).is_err());
        assert!(e.append_sample_rows_with(&[vec![0.0; 4]], no_repair).is_err());
        assert_eq!(e.matrix().n_samples(), 4);
        assert_eq!(e.appends_applied(), 0);
        // A failing policy keeps the appended rows but restores the
        // pre-append selection.
        let r = e.append_sample_rows_with(&[vec![0.5; 4]], |ev, _ws| {
            ev.remove(1);
            Err(FamError::InvalidParameter { name: "policy", message: "boom".into() })
        });
        assert!(r.is_err());
        assert_eq!(e.matrix().n_samples(), 5);
        assert_eq!(e.selection(), vec![1, 3]);
        assert_eq!(e.appends_applied(), 1);
        let direct = regret::arr_unchecked(e.matrix(), &[1, 3]);
        assert!((e.arr() - direct).abs() < 1e-9);
    }

    #[test]
    fn append_functions_scores_under_the_live_universe() {
        use crate::distribution::{UniformLinear, UtilityDistribution};
        use rand::SeedableRng;
        let ds = Dataset::from_rows(vec![vec![0.9, 0.2], vec![0.4, 0.8], vec![0.1, 0.95]]).unwrap();
        let dist = UniformLinear::new(2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = ScoreMatrix::from_distribution(&ds, &dist, 10, &mut rng).unwrap();
        let mut e = DynamicEngine::new(m, 2, &[0, 1]).unwrap();
        let fns: Vec<Arc<dyn UtilityFunction>> = (0..6).map(|_| dist.sample(&mut rng)).collect();
        let report = e.append_functions_with(&ds, &fns, no_repair).unwrap();
        assert_eq!(report.n_samples, 16);
        // Bit-identical to the from-scratch build over the same stream.
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(3);
        let fresh = ScoreMatrix::from_distribution(&ds, &dist, 16, &mut rng2).unwrap();
        for u in 0..16 {
            assert_eq!(e.matrix().row(u), fresh.row(u), "row {u}");
        }
        // A wrong-universe dataset is rejected without mutating.
        let wrong = Dataset::from_rows(vec![vec![0.5, 0.5]]).unwrap();
        assert!(e.append_functions_with(&wrong, &fns, no_repair).is_err());
        assert_eq!(e.matrix().n_samples(), 16);
    }

    #[test]
    fn long_update_stream_stays_consistent() {
        let mut rng = StdRng::seed_from_u64(7);
        let n_samples = 12;
        let rows: Vec<Vec<f64>> =
            (0..n_samples).map(|_| (0..8).map(|_| rng.gen_range(0.01..1.0)).collect()).collect();
        let m = ScoreMatrix::from_rows(rows, None).unwrap();
        let mut e = DynamicEngine::new(m, 3, &[0, 4, 6]).unwrap();
        for step in 0..25 {
            let n = e.matrix().n_points();
            let mut batch = UpdateBatch::default();
            if n > 3 && rng.gen_bool(0.6) {
                batch.delete.push(rng.gen_range(0..n));
            }
            if rng.gen_bool(0.7) {
                batch.insert.push((0..n_samples).map(|_| rng.gen_range(0.01..1.0)).collect());
            }
            e.apply_with(&batch, |ev, ws| {
                // Greedy-ish toy policy: add inserted points while short.
                let mut added = 0;
                for p in ws.inserted.clone() {
                    if ev.len() < ws.k {
                        ev.add(p);
                        added += 1;
                    }
                }
                Ok(RepairOutcome { added, removed: 0, evaluations: 0 })
            })
            .unwrap();
            let sel = e.selection();
            if !sel.is_empty() {
                let direct = regret::arr_unchecked(e.matrix(), &sel);
                assert!((e.arr() - direct).abs() < 1e-9, "step {step}: arr drifted");
            }
            assert!(sel.len() <= 3);
        }
        assert_eq!(e.batches_applied(), 25);
    }
}
