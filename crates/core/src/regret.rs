//! Regret, regret ratio, and their aggregates (Definitions 2–5).
//!
//! All metrics operate on a [`ScoreMatrix`](crate::ScoreMatrix) (or any
//! [`ScoreSource`]) and a selection of point
//! indices, computing Equation (1) of the paper (and its weighted analogue
//! for countable `F`, Definition 9).

use crate::error::Result;
use crate::scores::ScoreSource;
use crate::stats;

/// `sat(S, f_u)` — the best score within the selection for sample `u`
/// (0 for the empty selection, per Definition 2).
#[inline]
pub fn sat<S: ScoreSource + ?Sized>(m: &S, u: usize, selection: &[usize]) -> f64 {
    match m.row_slice(u) {
        // Sample-major fast path: gather from the contiguous row.
        // fam-lint: allow(K001) -- reference implementation of Definition 2; the hot path is SelectionEvaluator's kernel scan, pinned bit-identical to this shape by evaluator tests
        Some(row) => selection.iter().fold(0.0f64, |acc, &p| acc.max(row[p])),
        // fam-lint: allow(K001) -- same reference shape for sources without a row mirror
        None => selection.iter().fold(0.0f64, |acc, &p| acc.max(m.score(u, p))),
    }
}

/// `rr(S, f_u)` — regret ratio of sample `u` with respect to the selection.
#[inline]
pub fn rr<S: ScoreSource + ?Sized>(m: &S, u: usize, selection: &[usize]) -> f64 {
    1.0 - sat(m, u, selection) / m.best_value(u)
}

/// Regret ratio of every sample, in sample order.
pub fn rr_all<S: ScoreSource + ?Sized>(m: &S, selection: &[usize]) -> Vec<f64> {
    (0..m.n_samples()).map(|u| rr(m, u, selection)).collect()
}

/// `arr(S)` — probability-weighted average regret ratio (Definition 4 /
/// Equation (1); Definition 9 when weights encode exact atom masses).
///
/// Validates the selection before computing.
///
/// # Errors
///
/// Returns an error if the selection is empty, out of bounds, or contains
/// duplicates.
pub fn arr<S: ScoreSource + ?Sized>(m: &S, selection: &[usize]) -> Result<f64> {
    validate_selection(m, selection)?;
    Ok(arr_unchecked(m, selection))
}

/// `arr(S)` without selection validation; also accepts the empty selection
/// (which has average regret ratio 1 by Definition 2).
pub fn arr_unchecked<S: ScoreSource + ?Sized>(m: &S, selection: &[usize]) -> f64 {
    let mut acc = 0.0;
    for u in 0..m.n_samples() {
        acc += m.weight(u) * rr(m, u, selection);
    }
    acc
}

/// `vrr(S)` — variance of the regret ratio (Definition 5).
///
/// # Errors
///
/// Returns an error for invalid selections.
pub fn vrr<S: ScoreSource + ?Sized>(m: &S, selection: &[usize]) -> Result<f64> {
    validate_selection(m, selection)?;
    let rrs = rr_all(m, selection);
    let ws: Vec<f64> = (0..m.n_samples()).map(|u| m.weight(u)).collect();
    Ok(stats::weighted_variance(&rrs, &ws))
}

/// Standard deviation of the regret ratio (plotted in Figures 3 and 10).
///
/// # Errors
///
/// Returns an error for invalid selections.
pub fn rr_std_dev<S: ScoreSource + ?Sized>(m: &S, selection: &[usize]) -> Result<f64> {
    Ok(vrr(m, selection)?.sqrt())
}

/// Sampled maximum regret ratio `max_u rr(S, f_u)` — the k-regret objective
/// restricted to the sampled utility functions.
///
/// # Errors
///
/// Returns an error for invalid selections.
pub fn mrr_sampled<S: ScoreSource + ?Sized>(m: &S, selection: &[usize]) -> Result<f64> {
    validate_selection(m, selection)?;
    // fam-lint: allow(K001) -- mrr is a max (exact under any grouping), computed once per report, not per-candidate
    Ok((0..m.n_samples()).fold(0.0f64, |acc, u| acc.max(rr(m, u, selection))))
}

/// Regret ratio at the given user percentiles (the paper's "regret ratio
/// distribution" plots). Percentiles are in `[0, 100]`; users are weighted
/// by their probability mass.
///
/// # Errors
///
/// Returns an error for invalid selections.
pub fn rr_percentiles<S: ScoreSource + ?Sized>(
    m: &S,
    selection: &[usize],
    percentiles: &[f64],
) -> Result<Vec<f64>> {
    validate_selection(m, selection)?;
    let rrs = rr_all(m, selection);
    let mut pairs: Vec<(f64, f64)> =
        rrs.iter().enumerate().map(|(u, &r)| (r, m.weight(u))).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    Ok(percentiles.iter().map(|&q| stats::weighted_percentile_sorted(&pairs, q)).collect())
}

/// Summary of all regret metrics for one selection; convenient for
/// experiment harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct RegretReport {
    /// Average regret ratio.
    pub arr: f64,
    /// Variance of the regret ratio.
    pub vrr: f64,
    /// Standard deviation of the regret ratio.
    pub std_dev: f64,
    /// Maximum regret ratio over the samples.
    pub mrr: f64,
}

/// Computes a [`RegretReport`] in a single pass over the matrix.
///
/// # Errors
///
/// Returns an error for invalid selections.
pub fn report<S: ScoreSource + ?Sized>(m: &S, selection: &[usize]) -> Result<RegretReport> {
    validate_selection(m, selection)?;
    let mut mean = 0.0;
    let mut mrr = 0.0f64;
    let rrs = rr_all(m, selection);
    for (u, &r) in rrs.iter().enumerate() {
        mean += m.weight(u) * r;
        mrr = mrr.max(r);
    }
    let dev = |(u, r): (usize, &f64)| m.weight(u) * (r - mean) * (r - mean);
    // fam-lint: allow(K001) -- diagnostic variance for reports; computed once per call and never compared across binaries
    let vrr = rrs.iter().enumerate().map(dev).sum::<f64>();
    Ok(RegretReport { arr: mean, vrr, std_dev: vrr.sqrt(), mrr })
}

fn validate_selection<S: ScoreSource + ?Sized>(m: &S, selection: &[usize]) -> Result<()> {
    if selection.is_empty() {
        return Err(crate::error::FamError::InvalidK { k: 0, n: m.n_points() });
    }
    crate::selection::validate_indices(selection, m.n_points(), "selection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scores::ScoreMatrix;

    /// Table I of the paper.
    fn table_i() -> ScoreMatrix {
        ScoreMatrix::from_rows(
            vec![
                vec![0.9, 0.7, 0.2, 0.4], // Alex
                vec![0.6, 1.0, 0.5, 0.2], // Jerry
                vec![0.2, 0.6, 0.3, 1.0], // Tom
                vec![0.1, 0.2, 1.0, 0.9], // Sam
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_satisfaction() {
        // S = {Intercontinental, Hilton} = columns {2, 3}.
        let m = table_i();
        assert!((sat(&m, 0, &[2, 3]) - 0.4).abs() < 1e-12, "Alex's best in S is Hilton");
    }

    #[test]
    fn paper_example_arr() {
        // arr(S) with uniform probabilities = mean of per-user rr.
        let m = table_i();
        let s = [2, 3];
        let expected =
            ((1.0 - 0.4 / 0.9) + (1.0 - 0.5 / 1.0) + (1.0 - 1.0 / 1.0) + (1.0 - 1.0 / 1.0)) / 4.0;
        assert!((arr(&m, &s).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn full_database_has_zero_arr() {
        let m = table_i();
        let all = [0, 1, 2, 3];
        assert!(arr(&m, &all).unwrap().abs() < 1e-12);
        assert!(mrr_sampled(&m, &all).unwrap().abs() < 1e-12);
        assert!(rr_std_dev(&m, &all).unwrap().abs() < 1e-12);
    }

    #[test]
    fn empty_selection_has_arr_one() {
        let m = table_i();
        assert!((arr_unchecked(&m, &[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arr_is_monotone_under_addition() {
        let m = table_i();
        let small = arr(&m, &[0]).unwrap();
        let bigger = arr(&m, &[0, 2]).unwrap();
        assert!(bigger <= small + 1e-12);
    }

    #[test]
    fn weighted_arr_uses_probabilities() {
        let m = ScoreMatrix::from_rows(vec![vec![1.0, 0.5], vec![0.5, 1.0]], Some(vec![0.9, 0.1]))
            .unwrap();
        // S = {0}: user0 rr=0 (w 0.9), user1 rr=0.5 (w 0.1).
        assert!((arr(&m, &[0]).unwrap() - 0.05).abs() < 1e-12);
        // S = {1}: user0 rr=0.5 (w 0.9), user1 rr=0.
        assert!((arr(&m, &[1]).unwrap() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn variance_and_std_dev() {
        let m = ScoreMatrix::from_rows(vec![vec![1.0, 0.5], vec![0.5, 1.0]], None).unwrap();
        // S = {0}: rr = [0, 0.5]; mean 0.25, var 0.0625, std 0.25.
        assert!((vrr(&m, &[0]).unwrap() - 0.0625).abs() < 1e-12);
        assert!((rr_std_dev(&m, &[0]).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn percentiles_of_regret() {
        let m = table_i();
        let ps = rr_percentiles(&m, &[2, 3], &[0.0, 50.0, 100.0]).unwrap();
        // rr values: Alex 0.555..., Jerry 0.5, Tom 0, Sam 0 -> sorted [0,0,0.5,0.5556]
        assert!(ps[0].abs() < 1e-12);
        assert!((ps[1] - 0.0).abs() < 1e-12);
        assert!((ps[2] - (1.0 - 0.4 / 0.9)).abs() < 1e-12);
    }

    #[test]
    fn report_matches_individual_metrics() {
        let m = table_i();
        let sel = [1, 3];
        let rep = report(&m, &sel).unwrap();
        assert!((rep.arr - arr(&m, &sel).unwrap()).abs() < 1e-12);
        assert!((rep.vrr - vrr(&m, &sel).unwrap()).abs() < 1e-12);
        assert!((rep.mrr - mrr_sampled(&m, &sel).unwrap()).abs() < 1e-12);
        assert!((rep.std_dev - rep.vrr.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn selection_validation() {
        let m = table_i();
        assert!(arr(&m, &[]).is_err());
        assert!(arr(&m, &[9]).is_err());
        assert!(arr(&m, &[1, 1]).is_err());
        assert!(rr_percentiles(&m, &[], &[50.0]).is_err());
    }
}
