//! Compact linear score storage — the `O(d(N+n))` space optimization of
//! Section III-D-3.
//!
//! When utility functions are linear, storing the `N × d` weight vectors
//! and the `n × d` database is enough: scores are recomputed on demand at
//! a factor-`d` time cost. [`LinearScores`] implements [`ScoreSource`], so
//! GREEDY-SHRINK and the other sampled algorithms run on it unchanged —
//! which is what makes the `n = 10⁶⁺` sweeps of Figure 7 feasible without
//! a multi-gigabyte matrix.

use rand::{Rng, RngCore};

use crate::dataset::Dataset;
use crate::error::{FamError, Result};
use crate::randext;
use crate::scores::ScoreSource;

/// Linear utility samples stored as weight vectors; scores computed on
/// demand as dot products.
#[derive(Debug, Clone)]
pub struct LinearScores {
    /// `N × d` row-major utility weights.
    weights: Vec<f64>,
    dim: usize,
    dataset: Dataset,
    sample_weights: Vec<f64>,
    best_index: Vec<u32>,
    best_value: Vec<f64>,
}

impl LinearScores {
    /// Builds from explicit per-sample weight vectors with uniform sample
    /// probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/ragged weights, negative or non-finite
    /// entries, or samples that score every point 0.
    pub fn from_weight_rows(dataset: Dataset, rows: Vec<Vec<f64>>) -> Result<Self> {
        let d = dataset.dim();
        if rows.is_empty() {
            return Err(FamError::InvalidParameter {
                name: "rows",
                message: "need at least one utility weight vector".into(),
            });
        }
        let mut weights = Vec::with_capacity(rows.len() * d);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != d {
                return Err(FamError::DimensionMismatch { expected: d, got: r.len() });
            }
            for (j, v) in r.iter().enumerate() {
                if !v.is_finite() {
                    return Err(FamError::NonFinite { row: i, col: j });
                }
                if *v < 0.0 {
                    return Err(FamError::NegativeValue { row: i, col: j });
                }
                weights.push(*v);
            }
        }
        Self::finish(dataset, weights, rows.len())
    }

    /// Samples `n_samples` weight vectors i.i.d. uniform on `[0,1]^d` (the
    /// paper's standard linear Θ).
    ///
    /// # Errors
    ///
    /// Returns an error when `n_samples == 0`.
    pub fn sample_uniform(
        dataset: Dataset,
        n_samples: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self> {
        if n_samples == 0 {
            return Err(FamError::InvalidParameter {
                name: "n_samples",
                message: "must be at least 1".into(),
            });
        }
        let d = dataset.dim();
        let mut weights = Vec::with_capacity(n_samples * d);
        for _ in 0..n_samples {
            loop {
                let start = weights.len();
                for _ in 0..d {
                    weights.push(rng.gen_range(0.0..=1.0));
                }
                if weights[start..].iter().any(|w| *w > 0.0) {
                    break;
                }
                weights.truncate(start);
            }
        }
        Self::finish(dataset, weights, n_samples)
    }

    /// Samples weight vectors uniform on the probability simplex.
    ///
    /// # Errors
    ///
    /// Returns an error when `n_samples == 0`.
    pub fn sample_simplex(
        dataset: Dataset,
        n_samples: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self> {
        if n_samples == 0 {
            return Err(FamError::InvalidParameter {
                name: "n_samples",
                message: "must be at least 1".into(),
            });
        }
        let d = dataset.dim();
        let mut weights = vec![0.0; n_samples * d];
        for u in 0..n_samples {
            randext::uniform_simplex_into(rng, &mut weights[u * d..(u + 1) * d]);
        }
        Self::finish(dataset, weights, n_samples)
    }

    fn finish(dataset: Dataset, weights: Vec<f64>, n_samples: usize) -> Result<Self> {
        let d = dataset.dim();
        let n = dataset.len();
        let flat = dataset.as_flat();
        // The O(nNd) best-point pass fans out over sample chunks; merging
        // in chunk order preserves the serial scan's first-error semantics.
        // Each sample streams through the tiled dot-product kernel, whose
        // scores (and therefore best) are bit-identical to `score(u, p)`.
        let per_sample = crate::par::map_adaptive(n_samples, n * d, |range| {
            range
                .map(|u| {
                    let w = &weights[u * d..(u + 1) * d];
                    let (bi, bv) = crate::kernels::linear_best(w, flat, d);
                    if bv <= 0.0 {
                        return Err(FamError::DegenerateUtility { sample: u });
                    }
                    Ok((bi, bv))
                })
                .collect::<Result<Vec<_>>>()
        });
        let mut best_index = Vec::with_capacity(n_samples);
        let mut best_value = Vec::with_capacity(n_samples);
        for chunk in per_sample {
            for (bi, bv) in chunk? {
                best_index.push(bi);
                best_value.push(bv);
            }
        }
        Ok(LinearScores {
            weights,
            dim: d,
            dataset,
            sample_weights: vec![1.0 / n_samples as f64; n_samples],
            best_index,
            best_value,
        })
    }

    /// Appends new linear utility samples **in place** from explicit
    /// weight vectors — the sample-append path that keeps progressive
    /// precision available on the compact substrate (the
    /// [`crate::ScoreMatrix`] twin is
    /// [`crate::ScoreMatrix::append_samples_flat`]). The weight buffer
    /// extends at the end, the best-point pass runs over the new samples
    /// only, and per-sample probabilities re-spread to `1/N` — so every
    /// observable value is **bit-identical** to
    /// [`LinearScores::from_weight_rows`] over the concatenated rows.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving the substrate untouched) for ragged,
    /// non-finite, negative, or degenerate (all-zero-scoring) rows; the
    /// reported row index is absolute, matching the from-scratch build.
    pub fn append_weight_rows(&mut self, rows: &[Vec<f64>]) -> Result<()> {
        let d = self.dim;
        let n_old = self.sample_weights.len();
        let mut staged = Vec::with_capacity(rows.len() * d);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != d {
                return Err(FamError::DimensionMismatch { expected: d, got: r.len() });
            }
            for (j, v) in r.iter().enumerate() {
                if !v.is_finite() {
                    return Err(FamError::NonFinite { row: n_old + i, col: j });
                }
                if *v < 0.0 {
                    return Err(FamError::NegativeValue { row: n_old + i, col: j });
                }
                staged.push(*v);
            }
        }
        if rows.is_empty() {
            return Ok(());
        }
        let n = self.dataset.len();
        let flat = self.dataset.as_flat();
        // Same chunked best pass as `finish`, shifted to absolute sample
        // indices; staged state commits only after every row validated.
        let per_sample = crate::par::map_adaptive(rows.len(), n * d, |range| {
            range
                .map(|i| {
                    let w = &staged[i * d..(i + 1) * d];
                    let (bi, bv) = crate::kernels::linear_best(w, flat, d);
                    if bv <= 0.0 {
                        return Err(FamError::DegenerateUtility { sample: n_old + i });
                    }
                    Ok((bi, bv))
                })
                .collect::<Result<Vec<_>>>()
        });
        let mut bests = Vec::with_capacity(rows.len());
        for chunk in per_sample {
            bests.extend(chunk?);
        }
        self.weights.extend_from_slice(&staged);
        for (bi, bv) in bests {
            self.best_index.push(bi);
            self.best_value.push(bv);
        }
        let n_new = n_old + rows.len();
        self.sample_weights.clear();
        self.sample_weights.resize(n_new, 1.0 / n_new as f64);
        Ok(())
    }

    /// Appends sampled utility functions, which must all be linear
    /// (expose [`crate::UtilityFunction::linear_weights`]) of the
    /// substrate's dimensionality. See
    /// [`LinearScores::append_weight_rows`] for the in-place/bit-identity
    /// contract.
    ///
    /// # Errors
    ///
    /// As [`LinearScores::append_weight_rows`]; a non-linear function
    /// reports [`FamError::InvalidParameter`] (materialize a
    /// [`crate::ScoreMatrix`] for those instead).
    pub fn append_functions(
        &mut self,
        functions: &[std::sync::Arc<dyn crate::utility::UtilityFunction>],
    ) -> Result<()> {
        let mut rows = Vec::with_capacity(functions.len());
        for f in functions {
            match f.linear_weights() {
                Some(w) if w.len() == self.dim => rows.push(w.to_vec()),
                Some(w) => {
                    return Err(FamError::DimensionMismatch { expected: self.dim, got: w.len() })
                }
                None => {
                    return Err(FamError::InvalidParameter {
                        name: "functions",
                        message: "LinearScores appends linear utilities only; \
                                  materialize a ScoreMatrix for general functions"
                            .into(),
                    })
                }
            }
        }
        self.append_weight_rows(&rows)
    }

    /// Samples `count` fresh weight vectors i.i.d. uniform on `[0,1]^d`
    /// and appends them — the incremental twin of
    /// [`LinearScores::sample_uniform`]: continuing the **same** RNG that
    /// built the substrate reproduces the from-scratch sample stream
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// As [`LinearScores::append_weight_rows`].
    pub fn append_uniform(&mut self, count: usize, rng: &mut dyn RngCore) -> Result<()> {
        let d = self.dim;
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            // Identical rejection loop to `sample_uniform`, so the RNG
            // consumption (and thus the stream continuation) matches.
            loop {
                let r: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..=1.0)).collect();
                if r.iter().any(|w| *w > 0.0) {
                    rows.push(r);
                    break;
                }
            }
        }
        self.append_weight_rows(&rows)
    }

    /// Samples `count` fresh weight vectors uniform on the probability
    /// simplex and appends them — the incremental twin of
    /// [`LinearScores::sample_simplex`], with the same
    /// stream-continuation contract as [`LinearScores::append_uniform`].
    ///
    /// # Errors
    ///
    /// As [`LinearScores::append_weight_rows`].
    pub fn append_simplex(&mut self, count: usize, rng: &mut dyn RngCore) -> Result<()> {
        let d = self.dim;
        let mut rows = vec![vec![0.0; d]; count];
        for r in &mut rows {
            randext::uniform_simplex_into(rng, r);
        }
        self.append_weight_rows(&rows)
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The weight vector of sample `u`.
    pub fn weight_vector(&self, u: usize) -> &[f64] {
        &self.weights[u * self.dim..(u + 1) * self.dim]
    }

    /// Approximate heap footprint in bytes — `O(d(N + n))`, versus the
    /// `O(nN)` of a materialized [`crate::ScoreMatrix`].
    pub fn approx_bytes(&self) -> usize {
        (self.weights.len()
            + self.dataset.as_flat().len()
            + self.sample_weights.len()
            + self.best_value.len())
            * std::mem::size_of::<f64>()
            + self.best_index.len() * std::mem::size_of::<u32>()
    }
}

impl ScoreSource for LinearScores {
    #[inline]
    fn n_samples(&self) -> usize {
        self.sample_weights.len()
    }

    #[inline]
    fn n_points(&self) -> usize {
        self.dataset.len()
    }

    #[inline]
    fn score(&self, u: usize, p: usize) -> f64 {
        let w = &self.weights[u * self.dim..(u + 1) * self.dim];
        crate::kernels::dot(w, self.dataset.point(p))
    }

    #[inline]
    fn weight(&self, u: usize) -> f64 {
        self.sample_weights[u]
    }

    #[inline]
    fn best_index(&self, u: usize) -> usize {
        self.best_index[u] as usize
    }

    #[inline]
    fn best_value(&self, u: usize) -> f64 {
        self.best_value[u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scores::ScoreMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        Dataset::from_rows(vec![vec![0.9, 0.1, 0.3], vec![0.2, 0.8, 0.5], vec![0.5, 0.5, 0.9]])
            .unwrap()
    }

    #[test]
    fn matches_materialized_matrix_exactly() {
        let ds = dataset();
        let rows = vec![vec![1.0, 0.0, 0.0], vec![0.2, 0.5, 0.9], vec![0.4, 0.4, 0.4]];
        let compact = LinearScores::from_weight_rows(ds.clone(), rows.clone()).unwrap();
        // Materialize the same scores.
        let mut flat = Vec::new();
        for r in &rows {
            for p in ds.points() {
                flat.push(p.iter().zip(r).map(|(a, b)| a * b).sum());
            }
        }
        let dense = ScoreMatrix::from_flat(flat, 3, 3, None).unwrap();
        for u in 0..3 {
            assert_eq!(compact.best_index(u), ScoreSource::best_index(&dense, u));
            assert!((compact.best_value(u) - ScoreSource::best_value(&dense, u)).abs() < 1e-12);
            for p in 0..3 {
                assert!((compact.score(u, p) - ScoreSource::score(&dense, u, p)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn validation() {
        let ds = dataset();
        assert!(LinearScores::from_weight_rows(ds.clone(), vec![]).is_err());
        assert!(LinearScores::from_weight_rows(ds.clone(), vec![vec![1.0]]).is_err());
        assert!(LinearScores::from_weight_rows(ds.clone(), vec![vec![-1.0, 0.0, 0.0]]).is_err());
        assert!(
            LinearScores::from_weight_rows(ds.clone(), vec![vec![0.0, 0.0, 0.0]]).is_err(),
            "all-zero weights score every point 0"
        );
        let mut rng = StdRng::seed_from_u64(1);
        assert!(LinearScores::sample_uniform(ds.clone(), 0, &mut rng).is_err());
        assert!(LinearScores::sample_simplex(ds, 0, &mut rng).is_err());
    }

    #[test]
    fn sampling_constructors_produce_valid_sources() {
        let mut rng = StdRng::seed_from_u64(2);
        for src in [
            LinearScores::sample_uniform(dataset(), 200, &mut rng).unwrap(),
            LinearScores::sample_simplex(dataset(), 200, &mut rng).unwrap(),
        ] {
            assert_eq!(src.n_samples(), 200);
            assert_eq!(src.n_points(), 3);
            for u in 0..200 {
                assert!(src.best_value(u) > 0.0);
                let manual = (0..3).map(|p| src.score(u, p)).fold(0.0f64, f64::max);
                assert!((src.best_value(u) - manual).abs() < 1e-12);
            }
            let total: f64 = (0..200).map(|u| src.weight(u)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn append_matches_from_scratch_bitwise() {
        let ds = dataset();
        // Build 30, append 50 continuing the same RNG; compare against a
        // one-shot build of 80 from a fresh RNG with the same seed.
        let mut rng = StdRng::seed_from_u64(7);
        let mut grown = LinearScores::sample_uniform(ds.clone(), 30, &mut rng).unwrap();
        grown.append_uniform(50, &mut rng).unwrap();
        let fresh =
            LinearScores::sample_uniform(ds.clone(), 80, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(grown.n_samples(), 80);
        for u in 0..80 {
            assert_eq!(grown.weight_vector(u), fresh.weight_vector(u), "sample {u}");
            assert_eq!(grown.best_index(u), fresh.best_index(u));
            assert_eq!(grown.best_value(u).to_bits(), fresh.best_value(u).to_bits());
            assert_eq!(grown.weight(u).to_bits(), fresh.weight(u).to_bits());
        }
        // Same for the simplex sampler.
        let mut rng = StdRng::seed_from_u64(8);
        let mut grown = LinearScores::sample_simplex(ds.clone(), 20, &mut rng).unwrap();
        grown.append_simplex(25, &mut rng).unwrap();
        let fresh = LinearScores::sample_simplex(ds, 45, &mut StdRng::seed_from_u64(8)).unwrap();
        for u in 0..45 {
            assert_eq!(grown.weight_vector(u), fresh.weight_vector(u), "sample {u}");
            assert_eq!(grown.best_value(u).to_bits(), fresh.best_value(u).to_bits());
        }
    }

    #[test]
    fn append_functions_takes_linear_utilities_only() {
        use crate::utility::{LinearUtility, TableUtility};
        use std::sync::Arc;
        let ds = dataset();
        let mut src =
            LinearScores::from_weight_rows(ds.clone(), vec![vec![1.0, 0.0, 0.0]]).unwrap();
        let linear: Vec<Arc<dyn crate::UtilityFunction>> =
            vec![Arc::new(LinearUtility::new(vec![0.2, 0.5, 0.9]).unwrap())];
        src.append_functions(&linear).unwrap();
        assert_eq!(src.n_samples(), 2);
        assert_eq!(src.weight_vector(1), &[0.2, 0.5, 0.9]);
        // From-scratch equivalence over the concatenated rows.
        let fresh = LinearScores::from_weight_rows(
            ds.clone(),
            vec![vec![1.0, 0.0, 0.0], vec![0.2, 0.5, 0.9]],
        )
        .unwrap();
        for u in 0..2 {
            assert_eq!(src.best_index(u), fresh.best_index(u));
            assert_eq!(src.best_value(u).to_bits(), fresh.best_value(u).to_bits());
            assert_eq!(src.weight(u).to_bits(), fresh.weight(u).to_bits());
        }
        let table: Vec<Arc<dyn crate::UtilityFunction>> =
            vec![Arc::new(TableUtility::new(vec![0.5, 0.5, 0.5]).unwrap())];
        assert!(src.append_functions(&table).is_err(), "non-linear utilities are rejected");
        let wrong_dim: Vec<Arc<dyn crate::UtilityFunction>> =
            vec![Arc::new(LinearUtility::new(vec![1.0]).unwrap())];
        assert!(src.append_functions(&wrong_dim).is_err());
        assert_eq!(src.n_samples(), 2, "failed appends leave the substrate untouched");
    }

    #[test]
    fn append_rejections_are_atomic() {
        let ds = dataset();
        let mut src =
            LinearScores::from_weight_rows(ds, vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]])
                .unwrap();
        let before = src.clone();
        assert!(src.append_weight_rows(&[vec![1.0, 1.0]]).is_err(), "ragged");
        assert!(src.append_weight_rows(&[vec![-1.0, 0.0, 0.0]]).is_err(), "negative");
        assert!(src.append_weight_rows(&[vec![f64::NAN, 0.0, 0.0]]).is_err(), "non-finite");
        assert!(
            src.append_weight_rows(&[vec![1.0, 1.0, 1.0], vec![0.0, 0.0, 0.0]]).is_err(),
            "degenerate row anywhere in the batch rejects the whole batch"
        );
        src.append_weight_rows(&[]).unwrap();
        assert_eq!(src.n_samples(), before.n_samples());
        for u in 0..2 {
            assert_eq!(src.weight_vector(u), before.weight_vector(u));
            assert_eq!(src.best_value(u).to_bits(), before.best_value(u).to_bits());
            assert_eq!(src.weight(u).to_bits(), before.weight(u).to_bits());
        }
    }

    #[test]
    fn memory_is_compact() {
        let mut rng = StdRng::seed_from_u64(3);
        let n_points = 500;
        let big = Dataset::from_rows(
            (0..n_points).map(|i| vec![(i % 97) as f64 / 97.0 + 0.01, 0.5, 0.5]).collect(),
        )
        .unwrap();
        let src = LinearScores::sample_uniform(big, 1_000, &mut rng).unwrap();
        // d(N + n) * 8 bytes plus bookkeeping, far below N*n*8 = 4 MB.
        assert!(src.approx_bytes() < 200_000, "footprint {}", src.approx_bytes());
    }
}
