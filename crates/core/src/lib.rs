//! # fam-core
//!
//! Core abstractions for the **FAM** problem — *Finding the Average Regret
//! Ratio Minimizing Set* (Zeighami & Wong, ICDE 2019).
//!
//! Given a database `D` of `n` points and a probability distribution `Θ`
//! over user utility functions, FAM asks for the set `S ⊆ D` of `k` points
//! minimizing the expected regret ratio `arr(S) = E_f[1 − sat(S,f)/sat(D,f)]`.
//!
//! This crate provides:
//!
//! * [`Dataset`] — the point database (validated, flat storage);
//! * [`UtilityFunction`] implementations ([`LinearUtility`],
//!   [`CobbDouglasUtility`], [`TableUtility`]) and [`UtilityDistribution`]s
//!   over them (uniform box, simplex, Dirichlet, discrete — Appendix A);
//! * [`ScoreMatrix`] — the `N × n` sampled utility-score matrix every
//!   algorithm consumes, with precomputed per-user best points;
//! * regret metrics ([`regret::arr`], [`regret::vrr`],
//!   [`regret::rr_percentiles`], …);
//! * [`SelectionEvaluator`] — incremental `arr` maintenance implementing the
//!   paper's Improvement 1, with detachable state ([`EvaluatorState`]) for
//!   dynamic databases;
//! * [`DynamicEngine`] — live insert/delete maintenance of a matrix and
//!   its selection ([`dynamic`]);
//! * Chernoff sampling bounds ([`chernoff_sample_size`], Theorem 4 /
//!   Table V);
//! * structural-property checks (supermodularity, monotonicity, steepness —
//!   Theorems 2–3) in [`properties`];
//! * the deterministic multicore substrate behind the default-on
//!   `parallel` cargo feature ([`par`]) — every hot path runs chunked with
//!   ordered reductions, so serial and parallel results are bit-identical;
//! * the cache-blocked numeric kernels those hot paths share ([`kernels`]):
//!   fused score+validate+best scoring, lane-decomposed folds, top-two
//!   scans, and blocked transposes. The memory-layout and performance
//!   model behind them is documented in `docs/PERFORMANCE.md`.
//!
//! Algorithms (GREEDY-SHRINK, the exact 2-D DP, and all baselines) live in
//! the `fam-algos` crate; the `fam` facade crate re-exports everything.

#![warn(missing_docs)]
// fam-lint: allow(U001) -- deny instead of forbid so exactly one module,
// par::pool, can opt back in with #![allow(unsafe_code)]: the persistent
// worker pool needs one audited lifetime-erasure transmute (its soundness
// argument is documented at the top of par/pool.rs). forbid() cannot be
// overridden, so the crate-wide default stays deny and every other module
// still rejects unsafe at compile time.
#![deny(unsafe_code)]

pub mod dataset;
pub mod deadline;
pub mod distribution;
pub mod dynamic;
pub mod error;
pub mod evaluator;
pub mod failpoints;
pub mod kernels;
pub mod linear_scores;
pub mod par;
pub mod properties;
pub mod randext;
pub mod regret;
pub mod sampling;
pub mod scores;
pub mod selection;
pub mod solve;
pub mod stats;
pub mod streaming;
pub mod utility;

pub use dataset::Dataset;
pub use deadline::Deadline;
pub use distribution::{
    CobbDouglasDistribution, DirichletLinear, DiscreteDistribution, SimplexLinear, UniformLinear,
    UtilityDistribution,
};
pub use dynamic::{
    AppendReport, ApplyReport, DynamicEngine, RepairOutcome, UpdateBatch, WarmStart,
};
pub use error::{FamError, Result};
pub use evaluator::{EvalCounters, EvaluatorState, SelectionEvaluator};
pub use linear_scores::LinearScores;
pub use regret::RegretReport;
pub use sampling::{
    check_matrix_budget, chernoff_epsilon, chernoff_sample_size, PrecisionSpec, SampleSpec,
    DEFAULT_SIGMA,
};
pub use scores::{ScoreMatrix, ScoreSource, TiledBuildStats};
pub use selection::Selection;
pub use solve::{MeasureKind, ReduceKind, SolveCtx, SolveOutput, SolverParams};
pub use utility::{CobbDouglasUtility, LinearUtility, TableUtility, UtilityFunction};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::dataset::Dataset;
    pub use crate::deadline::Deadline;
    pub use crate::distribution::{
        CobbDouglasDistribution, DirichletLinear, DiscreteDistribution, SimplexLinear,
        UniformLinear, UtilityDistribution,
    };
    pub use crate::dynamic::{DynamicEngine, UpdateBatch, WarmStart};
    pub use crate::error::{FamError, Result};
    pub use crate::evaluator::SelectionEvaluator;
    pub use crate::linear_scores::LinearScores;
    pub use crate::regret;
    pub use crate::sampling::{
        check_matrix_budget, chernoff_epsilon, chernoff_sample_size, PrecisionSpec, SampleSpec,
        DEFAULT_SIGMA,
    };
    pub use crate::scores::{ScoreMatrix, ScoreSource};
    pub use crate::selection::Selection;
    pub use crate::solve::{MeasureKind, ReduceKind, SolveCtx, SolveOutput, SolverParams};
    pub use crate::utility::{CobbDouglasUtility, LinearUtility, TableUtility, UtilityFunction};
}
