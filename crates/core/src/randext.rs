//! Extra random-variate samplers built on top of `rand`'s uniform source.
//!
//! The allowed dependency set contains `rand` but not `rand_distr`, so the
//! handful of non-uniform variates the workspace needs (standard normal,
//! gamma, Dirichlet) are implemented here from first principles.

use rand::Rng;

/// Samples a standard normal variate via the Marsaglia polar method.
///
/// The polar method avoids trigonometric functions and is numerically
/// well-behaved for the tails we care about.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `N(mean, std_dev^2)`.
///
/// # Panics
///
/// Panics (debug) if `std_dev` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Samples a Gamma(shape, 1) variate via Marsaglia–Tsang (2000).
///
/// Handles `shape < 1` through the boosting identity
/// `Gamma(a) = Gamma(a+1) * U^(1/a)`.
///
/// # Panics
///
/// Panics (debug) if `shape <= 0`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: sample Gamma(shape + 1) and scale by U^(1/shape).
        let g = gamma(rng, shape + 1.0);
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(0.0..1.0);
        // Squeeze then full acceptance test.
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v3;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Samples from a Dirichlet distribution with concentration `alpha`,
/// writing the result into `out` (which must match `alpha` in length).
///
/// # Panics
///
/// Panics (debug) if lengths differ or any `alpha` is non-positive.
pub fn dirichlet_into<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64], out: &mut [f64]) {
    debug_assert_eq!(alpha.len(), out.len());
    let mut sum = 0.0;
    for (o, &a) in out.iter_mut().zip(alpha) {
        let g = gamma(rng, a);
        *o = g;
        sum += g;
    }
    if sum <= 0.0 {
        // Vanishingly rare underflow for tiny alphas: fall back to uniform.
        let v = 1.0 / out.len() as f64;
        out.iter_mut().for_each(|o| *o = v);
        return;
    }
    out.iter_mut().for_each(|o| *o /= sum);
}

/// Samples a point uniformly from the standard probability simplex
/// (equivalent to Dirichlet with all-ones concentration), writing into
/// `out`.
pub fn uniform_simplex_into<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    // Exponential spacings: -ln(U_i) normalized.
    let mut sum = 0.0;
    for o in out.iter_mut() {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let e = -u.ln();
        *o = e;
        sum += e;
    }
    out.iter_mut().for_each(|o| *o /= sum);
}

/// Draws an index from a discrete distribution given cumulative weights
/// (`cum` must be non-decreasing and end at the total mass).
///
/// # Panics
///
/// Panics (debug) if `cum` is empty.
pub fn sample_discrete_cdf<R: Rng + ?Sized>(rng: &mut R, cum: &[f64]) -> usize {
    debug_assert!(!cum.is_empty());
    let total = *cum.last().expect("non-empty cdf");
    let x: f64 = rng.gen_range(0.0..total);
    // Binary search for the first cum[i] > x.
    match cum.binary_search_by(|c| c.total_cmp(&x)) {
        Ok(i) => (i + 1).min(cum.len() - 1),
        Err(i) => i.min(cum.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFA11)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_with_params() {
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gamma_moments_shape_ge_one() {
        let mut r = rng();
        let n = 200_000;
        let shape = 3.5;
        let samples: Vec<f64> = (0..n).map(|_| gamma(&mut r, shape)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - shape).abs() < 0.05, "mean {mean}");
        assert!((var - shape).abs() < 0.2, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_lt_one() {
        let mut r = rng();
        let n = 200_000;
        let shape = 0.5;
        let mean = (0..n).map(|_| gamma(&mut r, shape)).sum::<f64>() / n as f64;
        assert!((mean - shape).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gamma_is_positive() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(gamma(&mut r, 0.2) > 0.0);
            assert!(gamma(&mut r, 7.0) > 0.0);
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_matches_mean() {
        let mut r = rng();
        let alpha = [2.0, 1.0, 1.0];
        let mut out = [0.0; 3];
        let mut acc = [0.0; 3];
        let n = 50_000;
        for _ in 0..n {
            dirichlet_into(&mut r, &alpha, &mut out);
            let s: f64 = out.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            for (a, o) in acc.iter_mut().zip(&out) {
                *a += o;
            }
        }
        // E[x_0] = 2/4 = 0.5
        assert!((acc[0] / n as f64 - 0.5).abs() < 0.01);
        assert!((acc[1] / n as f64 - 0.25).abs() < 0.01);
    }

    #[test]
    fn simplex_is_uniform_marginal() {
        let mut r = rng();
        let mut out = [0.0; 4];
        let n = 50_000;
        let mut acc = 0.0;
        for _ in 0..n {
            uniform_simplex_into(&mut r, &mut out);
            let s: f64 = out.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            acc += out[0];
        }
        assert!((acc / n as f64 - 0.25).abs() < 0.01);
    }

    #[test]
    fn discrete_cdf_respects_weights() {
        let mut r = rng();
        let cum = [0.1, 0.1, 0.9, 1.0]; // index 1 has zero mass
        let mut counts = [0usize; 4];
        for _ in 0..100_000 {
            counts[sample_discrete_cdf(&mut r, &cum)] += 1;
        }
        assert!(counts[1] < 200, "zero-mass bucket drew {}", counts[1]);
        let frac2 = counts[2] as f64 / 100_000.0;
        assert!((frac2 - 0.8).abs() < 0.01, "bucket 2 frac {frac2}");
    }
}
