//! Cooperative deadlines and cancellation for long-running work.
//!
//! A [`Deadline`] carries an optional wall-clock budget and an optional
//! shared cancellation flag; expensive code checks it between phases
//! ([`Deadline::check`]) and unwinds with a clean typed error instead of
//! pinning a worker. The serving layer threads one through every
//! request (query parameter `deadline_ms` or the server default) and
//! wires the cancellation flag to graceful drain, so an in-progress
//! generation build aborts — publishing nothing — when the server is
//! asked to stop.
//!
//! ```
//! use fam_core::Deadline;
//! use std::time::Duration;
//!
//! let d = Deadline::within(Duration::from_secs(5));
//! assert!(d.check().is_ok());
//! let expired = Deadline::within(Duration::ZERO);
//! assert!(expired.check().is_err());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{FamError, Result};

/// An optional wall-clock budget plus an optional cancellation flag.
///
/// `Deadline::default()` is unlimited and never cancels — the zero-cost
/// path for library callers that do not care.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    at: Option<Instant>,
    /// The budget as requested, retained for the error message.
    budget: Option<Duration>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Deadline {
    /// A deadline that never expires and never cancels.
    pub fn none() -> Self {
        Deadline::default()
    }

    /// Expires `budget` from now.
    pub fn within(budget: Duration) -> Self {
        // fam-lint: allow(D003) -- admission control is inherently wall-clock; a deadline gates *whether* work runs, never what it computes
        Deadline { at: Instant::now().checked_add(budget), budget: Some(budget), cancel: None }
    }

    /// Adds a shared cancellation flag: [`Deadline::check`] fails with
    /// [`FamError::Cancelled`] once the flag is set, regardless of the
    /// time budget.
    #[must_use]
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True when neither a budget nor a cancellation flag is attached.
    pub fn is_unlimited(&self) -> bool {
        self.at.is_none() && self.cancel.is_none()
    }

    /// Time remaining, or `None` when no budget is attached.
    pub fn remaining(&self) -> Option<Duration> {
        // fam-lint: allow(D003) -- reports the admission budget left; telemetry/Retry-After only, results never depend on it
        self.at.map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Fails once the budget is spent or the cancellation flag is set;
    /// call between phases of expensive work.
    ///
    /// # Errors
    ///
    /// [`FamError::Cancelled`] when the flag is set (checked first: a
    /// draining server wants work gone even if time remains), otherwise
    /// [`FamError::DeadlineExceeded`] past the budget.
    pub fn check(&self) -> Result<()> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Acquire) {
                return Err(FamError::Cancelled);
            }
        }
        if let Some(at) = self.at {
            // fam-lint: allow(D003) -- the expiry comparison: aborts work with DeadlineExceeded, never alters a produced answer
            if Instant::now() >= at {
                return Err(FamError::DeadlineExceeded {
                    budget_ms: self.budget.map_or(0, |b| b.as_millis() as u64),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let d = Deadline::none();
        assert!(d.is_unlimited());
        assert!(d.check().is_ok());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn budget_expires() {
        let d = Deadline::within(Duration::from_secs(60));
        assert!(!d.is_unlimited());
        assert!(d.check().is_ok());
        assert!(d.remaining().unwrap() > Duration::from_secs(50));

        let expired = Deadline::within(Duration::ZERO);
        let err = expired.check().unwrap_err();
        assert!(matches!(err, FamError::DeadlineExceeded { budget_ms: 0 }), "{err}");
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancel_flag_wins_over_remaining_time() {
        let flag = Arc::new(AtomicBool::new(false));
        let d = Deadline::within(Duration::from_secs(60)).with_cancel(Arc::clone(&flag));
        assert!(d.check().is_ok());
        flag.store(true, Ordering::Release);
        assert!(matches!(d.check(), Err(FamError::Cancelled)));
        // Cancel is checked even past the budget.
        let d2 = Deadline::within(Duration::ZERO).with_cancel(flag);
        assert!(matches!(d2.check(), Err(FamError::Cancelled)));
    }
}
